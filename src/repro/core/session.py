"""The one true MPC lifecycle: :class:`SolverSession`.

Before this module existed, every one-call driver re-implemented the
same lifecycle by hand — ``solve_ruling_set`` had regime sizing,
backend/trace wiring, simulator entry/exit, collection, and metrics
assembly inline, while ``solve_matching`` carried its own (drifted) copy
that silently lacked backend, trace, and regime support.  The session
owns that lifecycle once, for every registered algorithm and problem:

1. **Regime sizing** — resolve the :class:`MPCConfig` from a named
   regime (or take the caller's explicit config), via the spec's
   ``config_factory`` when it has one.  For α > 2 the power graph
   ``G^{α-1}`` that the machines must hold is built **once** here, used
   for sizing, and handed to the runner through the
   :class:`~repro.core.registry.RunContext` — execution does not
   rebuild it (previously ``_solve_mpc`` sized on one sequential build
   and ``det_alpha_ruling_set`` re-derived the same graph in-model).
2. **Backend / trace wiring** — ``backend`` / ``backend_workers`` and
   ``trace`` / ``trace_warn_utilization`` are applied uniformly, so
   every algorithm (matching included) gets execution backends and the
   superstep trace for free.
3. **Simulator lifecycle** — the simulator is always entered as a
   context manager: a solve that raises still releases backend worker
   pools (the contract ``tests/core/test_pipeline.py`` pins).
4. **Collection & assembly** — members are collected from the
   distributed graph under one key, and rounds / metrics / phase
   attribution / wall-clock / trace are assembled into one shared
   :class:`SessionStats`, which the problem-specific result types
   (:class:`~repro.core.spec.RulingSetResult`,
   :class:`~repro.core.spec.MatchingResult`) embed verbatim.

``local`` / ``sequential`` algorithms never touch the simulator: the
session runs their runner directly and returns empty MPC stats (0
rounds; LOCAL round counts travel in ``metrics["local_rounds"]``),
exactly as the hand-written drivers did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.registry import (
    AlgorithmSpec,
    LOCAL_FAMILY,
    MPC_FAMILY,
    RULING_SET,
    RunContext,
    RunPayload,
)
from repro.errors import AlgorithmError
from repro.graph.graph import Graph
from repro.mpc.config import MPCConfig
from repro.mpc.graph_store import DistributedGraph
from repro.mpc.simulator import Simulator


def make_config_from_stats(
    num_vertices: int,
    num_edges: int,
    max_degree: int,
    regime: str = "sublinear",
    alpha: Tuple[int, int] = (2, 3),
) -> MPCConfig:
    """Build the :class:`MPCConfig` for a named regime from counts alone.

    Sizing needs only ``(n, m, Δ)``, never the adjacency itself — which
    is what lets the streaming path (:func:`repro.core.pipeline.
    solve_ruling_set_stream`) size a run from a pass-1 file scan without
    materializing the graph.  ``regime`` is ``"sublinear"``
    (``S ≈ n^alpha``), ``"near-linear"``, or ``"single"``.
    """
    if regime == "sublinear":
        return MPCConfig.sublinear(
            num_vertices, num_edges, alpha[0], alpha[1], max_degree=max_degree
        )
    if regime == "near-linear":
        return MPCConfig.near_linear(
            num_vertices, num_edges, max_degree=max_degree
        )
    if regime == "single":
        return MPCConfig.single_machine(num_vertices, num_edges)
    raise AlgorithmError(f"unknown regime {regime!r}")


def make_config(
    graph: Graph, regime: str = "sublinear", alpha: Tuple[int, int] = (2, 3)
) -> MPCConfig:
    """Build the :class:`MPCConfig` for a named regime.

    Thin wrapper over :func:`make_config_from_stats` for callers holding
    an in-memory :class:`Graph`; pass an explicit :class:`MPCConfig` to
    the session (or to :func:`repro.core.pipeline.solve_ruling_set`) for
    anything else.
    """
    return make_config_from_stats(
        graph.num_vertices,
        graph.num_edges,
        graph.max_degree(),
        regime,
        alpha,
    )


@dataclass
class SessionStats:
    """The shared MPC-run slice of every result type.

    Model quantities (``rounds`` / ``metrics`` / ``phase_rounds``) are
    deterministic and participate in bit-identity comparisons; the
    wall-clock fields and the trace deliberately ride outside them.
    """

    rounds: int = 0
    metrics: Dict[str, object] = field(default_factory=dict)
    phase_rounds: Dict[str, int] = field(default_factory=dict)
    wall_time_s: float = 0.0
    time_per_phase: Dict[str, float] = field(default_factory=dict)
    trace: Optional[object] = None

    def result_kwargs(self) -> Dict[str, object]:
        """Keyword arguments for the result dataclasses' shared tail."""
        return {
            "rounds": self.rounds,
            "metrics": self.metrics,
            "phase_rounds": self.phase_rounds,
            "wall_time_s": self.wall_time_s,
            "time_per_phase": self.time_per_phase,
            "trace": self.trace,
        }


@dataclass
class SessionRun:
    """One completed session: the runner's payload plus shared stats."""

    payload: RunPayload
    stats: SessionStats
    config: Optional[MPCConfig] = None


class SolverSession:
    """One solver run, lifecycle included, for any registered algorithm.

    Construct with the graph, the :class:`AlgorithmSpec`, and the run
    parameters, then call :meth:`run`.  The session is single-use.
    """

    def __init__(
        self,
        graph: Graph,
        spec: AlgorithmSpec,
        *,
        beta: int = 2,
        alpha: int = 2,
        regime: str = "sublinear",
        alpha_mem: Tuple[int, int] = (2, 3),
        config: Optional[MPCConfig] = None,
        seed: int = 0,
        backend: Optional[str] = None,
        backend_workers: int = 0,
        kernel: Optional[str] = None,
        trace: bool = False,
        trace_warn_utilization: float = 0.9,
        governed: bool = False,
        in_set_key: str = "result_set",
        power_graph: Optional[Graph] = None,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.beta = beta
        self.alpha = alpha
        self.regime = regime
        self.alpha_mem = tuple(alpha_mem)
        self.explicit_config = config
        self.seed = seed
        self.backend = backend
        self.backend_workers = backend_workers
        self.kernel = kernel
        self.trace_enabled = trace
        self.trace_warn_utilization = trace_warn_utilization
        self.governed = governed
        self.in_set_key = in_set_key
        # The α > 2 power graph, built exactly once per session: it
        # sizes the regime AND is handed to the runner for execution.
        # A warm caller (SessionFactory) may pass the build from an
        # earlier session on the same graph; power_graph is a pure
        # function of (graph, alpha), so reuse cannot change results.
        self._power: Optional[Graph] = power_graph
        if (
            self._power is None
            and spec.family == MPC_FAMILY
            and alpha > 2
        ):
            from repro.graph.ops import power_graph as build_power

            self._power = build_power(graph, alpha - 1)

    # -- regime sizing ---------------------------------------------------

    @property
    def sizing_graph(self) -> Graph:
        """The graph the machines must hold (``G^{α-1}`` when α > 2)."""
        return self._power if self._power is not None else self.graph

    def power_adjacency(self) -> Optional[Dict[int, Tuple[int, ...]]]:
        """``G^{α-1}`` adjacency from the session's single build."""
        if self._power is None:
            return None
        return {
            v: tuple(self._power.neighbors(v))
            for v in self._power.vertices()
        }

    def resolve_config(self) -> MPCConfig:
        """The fully wired :class:`MPCConfig` for this run.

        Explicit config wins over the named regime; the spec's
        ``config_factory`` (when present) owns problem-specific sizing
        (e.g. the matching line-graph footprint).  Backend, kernel, and
        trace settings are applied here so every MPC algorithm shares
        them.
        """
        if self.explicit_config is not None:
            cfg = self.explicit_config
        elif self.spec.config_factory is not None:
            cfg = self.spec.config_factory(
                self.sizing_graph, self.regime, self.alpha_mem
            )
        else:
            cfg = make_config(self.sizing_graph, self.regime, self.alpha_mem)
        if self.backend is not None:
            cfg = cfg.with_backend(self.backend, self.backend_workers)
        if self.kernel is not None:
            cfg = cfg.with_kernel(self.kernel)
        if self.trace_enabled and not cfg.trace:
            cfg = cfg.with_trace(
                warn_utilization=self.trace_warn_utilization
            )
        if self.governed and not cfg.governed:
            cfg = cfg.with_governor()
        cfg.validate_input_size(
            MPCConfig.input_words(
                self.sizing_graph.num_vertices, self.sizing_graph.num_edges
            )
        )
        return cfg

    # -- execution -------------------------------------------------------

    def run(self) -> SessionRun:
        """Execute the algorithm and assemble the shared stats."""
        if self.spec.family != MPC_FAMILY:
            return self._run_direct()
        return self._run_mpc()

    def _run_direct(self) -> SessionRun:
        """LOCAL / sequential run: no simulator, 0 MPC rounds."""
        ctx = RunContext(
            graph=self.graph, alpha=self.alpha, beta=self.beta,
            seed=self.seed,
        )
        payload = self.spec.runner(ctx)
        metrics: Dict[str, object] = {}
        if self.spec.family == LOCAL_FAMILY:
            metrics["local_rounds"] = payload.local_rounds
        metrics.update(payload.extra_metrics)
        return SessionRun(payload=payload, stats=SessionStats(metrics=metrics))

    def _execute(self, ctx: RunContext) -> RunPayload:
        """Run the spec — as a phase program when it declares one.

        Specs with a ``program_factory`` are executed through
        :class:`~repro.core.program.SuperstepProgram` so the session owns
        phase sequencing, key teardown, and counter bookkeeping; the
        legacy ``runner`` stays as the streaming/direct entry point and
        as the fallback for specs that have not been ported.
        """
        if self.spec.program_factory is None:
            return self.spec.runner(ctx)
        from repro.core.program import ProgramContext

        program = self.spec.program_factory(ctx)
        pctx = ProgramContext(ctx.dg)
        counters = program.run(pctx)
        return RunPayload(
            counters=counters,
            members=pctx.members,
            matching=pctx.matching,
            extra_metrics=pctx.extra_metrics,
        )

    def _run_mpc(self) -> SessionRun:
        cfg = self.resolve_config()
        # Context manager, not a trailing shutdown() call: a solve that
        # raises (e.g. MPCViolationError) must still release the
        # backend's worker pools, or every failed run leaks processes.
        with Simulator(cfg) as sim:
            dg = DistributedGraph.load(sim, self.graph)
            ctx = RunContext(
                graph=self.graph, alpha=self.alpha, beta=self.beta,
                seed=self.seed, dg=dg, sim=sim,
                power_adjacency=self.power_adjacency(),
                in_set_key=self.in_set_key,
            )
            payload = self._execute(ctx)
            if payload.members is None and self.spec.problem == RULING_SET:
                payload.members = dg.collect_marked(self.in_set_key)
        metrics: Dict[str, object] = dict(sim.metrics.summary())
        metrics.update(
            {f"alg_{key}": value for key, value in payload.counters.items()}
        )
        metrics["num_machines"] = cfg.num_machines
        metrics["memory_words"] = cfg.memory_words
        if self._power is not None:
            # Price the α > 2 densification without rebuilding G^{α-1}
            # downstream (E9 reads this instead of its own power_graph).
            metrics["power_edges"] = self._power.num_edges
        metrics.update(payload.extra_metrics)
        stats = SessionStats(
            rounds=sim.metrics.rounds,
            metrics=metrics,
            phase_rounds=sim.metrics.phase_rounds(),
            wall_time_s=round(sim.metrics.wall_time_s, 6),
            time_per_phase={
                phase: round(seconds, 6)
                for phase, seconds in sim.metrics.time_per_phase.items()
            },
            trace=sim.trace,
        )
        return SessionRun(payload=payload, stats=stats, config=cfg)


class SessionFactory:
    """Warm session builder: per-graph artifacts survive across solves.

    A :class:`SolverSession` is single-use by design, so a caller that
    solves many requests on the same graph (the serve layer's batch
    engine, ``repro-mpc cache warm``) re-derives the same regime config
    and — for α > 2 — rebuilds the same ``G^{α-1}`` on every request.
    The factory memoizes both, keyed by the graph's content fingerprint,
    and hands them to each new session.

    Reuse is sound because both artifacts are pure functions of their
    keys: ``power_graph(graph, alpha-1)`` of ``(graph, alpha)``, and the
    *base* regime config of ``(graph, spec, regime, alpha_mem, alpha)``.
    Backend and trace wiring stay per-session (applied on top of the
    cached base config by :meth:`SolverSession.resolve_config`), so two
    sessions from one factory can still run on different backends.
    Sessions built warm are bit-identical to sessions built cold
    (pinned by test).
    """

    def __init__(self) -> None:
        self._power_cache: Dict[Tuple[str, int], Graph] = {}
        self._config_cache: Dict[Tuple, MPCConfig] = {}

    def session(
        self,
        graph: Graph,
        spec: AlgorithmSpec,
        **kwargs: object,
    ) -> SolverSession:
        """A :class:`SolverSession` wired with this factory's warm state.

        Accepts every :class:`SolverSession` keyword argument.  An
        explicit ``config`` (or ``power_graph``) from the caller wins
        over the factory's caches.
        """
        alpha = int(kwargs.get("alpha", 2))
        if (
            kwargs.get("power_graph") is None
            and spec.family == MPC_FAMILY
            and alpha > 2
        ):
            kwargs["power_graph"] = self._power(graph, alpha)
        session = SolverSession(graph, spec, **kwargs)
        if spec.family == MPC_FAMILY and session.explicit_config is None:
            session.explicit_config = self._base_config(session)
        return session

    def _power(self, graph: Graph, alpha: int) -> Graph:
        key = (graph.fingerprint(), alpha)
        if key not in self._power_cache:
            from repro.graph.ops import power_graph

            self._power_cache[key] = power_graph(graph, alpha - 1)
        return self._power_cache[key]

    def _base_config(self, session: SolverSession) -> MPCConfig:
        """The session's regime config, memoized on its semantic inputs."""
        key = (
            session.sizing_graph.fingerprint(),
            session.spec.name,
            session.regime,
            session.alpha_mem,
        )
        if key not in self._config_cache:
            if session.spec.config_factory is not None:
                cfg = session.spec.config_factory(
                    session.sizing_graph, session.regime, session.alpha_mem
                )
            else:
                cfg = make_config(
                    session.sizing_graph, session.regime, session.alpha_mem
                )
            self._config_cache[key] = cfg
        return self._config_cache[key]
