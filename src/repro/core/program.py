"""The phase-program framework: solvers as data, lifecycle handled once.

Every solver in this package is a sequence of *phases* — named units of
superstep work — threaded through loops and branches, with the same
bookkeeping re-implemented by hand in each module before this framework
existed: ``sim.begin_phase`` labels for :class:`~repro.mpc.metrics.
RunMetrics` timing and :class:`~repro.mpc.trace.TraceRecorder`
attribution, counter dictionaries, iteration limits with exhaustion
errors, per-iteration scratch-layer teardown, and machine-store key
management.

This module owns that lifecycle once:

* :class:`Phase` — one named unit: a body callable, the machine-store
  keys it may install (teardown bookkeeping and auditability), an
  optional budget *pricing hook* estimating the words the phase adds to
  a machine, and the trace label the framework emits on entry.
* :class:`Loop` / :class:`Branch` / :class:`Subprogram` — composition:
  bounded iteration (with the exhaustion error raised in one place),
  routing between phase arms, and embedding one program inside another.
* :class:`SuperstepProgram` — the ordered composition a
  :class:`~repro.core.session.SolverSession` executes directly: counter
  initialisation, phase-label emission, control-signal propagation, and
  key-namespace handling happen here, not in solver modules.
* :class:`ProgramContext` — the per-run state: the distributed graph,
  counters, driver-side scratch, the result payload slots, and the
  *level bookkeeping* (dynamically allocated adjacency layers released
  in one teardown step).

Phase bodies communicate control flow by returning a signal: ``EXIT``
ends the program (normal completion), ``BREAK`` leaves the innermost
:class:`Loop`, ``CONTINUE`` starts its next iteration.  Anything other
than a signal or ``None`` is a bug and raises.

This module is deliberately algorithm-agnostic: it imports no solver
module and spells no algorithm name (enforced by the drift-guard
tests).  Solver modules build programs from their own phase bodies; the
framework contributes structure, never policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import AlgorithmError


class ProgramSignal:
    """A control-flow sentinel a phase body may return."""

    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProgramSignal({self.label})"


#: End the whole program (normal completion).
EXIT = ProgramSignal("exit")
#: Leave the innermost :class:`Loop`.
BREAK = ProgramSignal("break")
#: Start the innermost :class:`Loop`'s next iteration.
CONTINUE = ProgramSignal("continue")


class ProgramContext:
    """Mutable per-run state threaded through every phase body.

    Holds the distributed graph and simulator, the counter dictionary
    the program returns, a free-form driver-side ``state`` dict for
    values that cross phase boundaries (routing decisions, measured
    sizes, committed seeds), the result payload slots the session reads
    back (``members`` / ``matching`` / ``extra_metrics``), and the
    level bookkeeping for dynamically allocated machine-store layers.

    ``namespace`` prefixes :meth:`key`, so a program's store keys cannot
    collide with another program's when both are composed into one run.
    The pre-framework solvers keep their historical (un-namespaced) key
    literals — store keys are priced by :func:`~repro.mpc.machine.
    words_of`, so renaming them would not be bit-identical.
    """

    def __init__(self, dg, counters: Optional[Dict[str, int]] = None):
        self.dg = dg
        self.sim = dg.sim
        self.counters: Dict[str, int] = counters if counters is not None else {}
        self.state: Dict[str, object] = {}
        self.namespace = ""
        self.members: Optional[List[int]] = None
        self.matching: Optional[List[Tuple[int, int]]] = None
        self.extra_metrics: Dict[str, object] = {}
        self._levels: List[str] = []

    # -- key management --------------------------------------------------

    def key(self, name: str) -> str:
        """``name`` under the active program's namespace prefix."""
        return self.namespace + name if self.namespace else name

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a counter (created at 0 if the program didn't)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    # -- level bookkeeping -----------------------------------------------

    def push_level(self, store_key: str) -> None:
        """Record a dynamically allocated machine-store layer.

        Layers registered here are released together by
        :meth:`release_levels` — the one teardown path every program
        shares, replacing each solver's hand-rolled cleanup loop.
        """
        self._levels.append(store_key)

    @property
    def level_keys(self) -> Tuple[str, ...]:
        """The currently registered (not yet released) layers."""
        return tuple(self._levels)

    def release_levels(self) -> None:
        """Drop every registered layer from every machine, in one step."""
        keys = tuple(self._levels)
        self._levels.clear()

        def cleanup(machine) -> None:
            for key in keys:
                machine.store.pop(key, None)

        self.sim.local(cleanup)

    def release(self, *keys: str) -> None:
        """Drop explicit machine-store keys (a phase's own teardown)."""

        def cleanup(machine) -> None:
            for key in keys:
                machine.store.pop(key, None)

        self.sim.local(cleanup)


#: A phase body: consumes the context, returns a signal or ``None``.
PhaseBody = Callable[[ProgramContext], Optional[ProgramSignal]]

#: A pricing hook: estimated machine-store words the phase installs.
PriceHook = Callable[[ProgramContext], int]


@dataclass(frozen=True)
class Phase:
    """One named unit of superstep work.

    ``name`` is the trace label: on entry the framework calls
    ``sim.begin_phase(name)``, which both stamps subsequent rounds for
    :meth:`~repro.mpc.metrics.RunMetrics.phase_rounds` / per-phase
    timing and labels :class:`~repro.mpc.trace.TraceRecorder` events.
    ``None`` means the work is un-attributed bookkeeping (it rides under
    the previous label, exactly like pre-framework inline code).

    ``keys`` declares the machine-store keys the phase may install —
    documentation plus teardown bookkeeping (:meth:`SuperstepProgram.
    declared_keys` is how tests audit a program's store footprint).

    ``price`` is the budget pricing hook: an estimate of the words this
    phase adds to a machine's store, used by :meth:`SuperstepProgram.
    price` for admission-style sizing without running the program.
    """

    body: PhaseBody
    name: Optional[str] = None
    keys: Tuple[str, ...] = ()
    price: Optional[PriceHook] = None

    def run(self, ctx: ProgramContext) -> Optional[ProgramSignal]:
        if self.name is not None:
            ctx.sim.begin_phase(self.name)
        signal = self.body(ctx)
        if signal is not None and not isinstance(signal, ProgramSignal):
            raise AlgorithmError(
                f"phase {self.name or self.body.__name__!r} returned "
                f"{signal!r}; phase bodies return a ProgramSignal or None"
            )
        return signal


@dataclass(frozen=True)
class Loop:
    """Bounded repetition of a step sequence.

    ``limit`` caps the iterations; exhausting it raises the exception
    built by ``exhausted`` (or ends the loop silently when ``None``).
    A body step returning ``BREAK`` ends the loop, ``CONTINUE`` skips to
    the next iteration, ``EXIT`` propagates outward and ends the whole
    program.
    """

    steps: Tuple["Step", ...]
    limit: Callable[[ProgramContext], int]
    exhausted: Optional[Callable[[ProgramContext], Exception]] = None

    def run(self, ctx: ProgramContext) -> Optional[ProgramSignal]:
        for _ in range(self.limit(ctx)):
            signal = run_steps(self.steps, ctx)
            if signal is EXIT:
                return EXIT
            if signal is BREAK:
                return None
            # None or CONTINUE: next iteration.
        if self.exhausted is not None:
            raise self.exhausted(ctx)
        return None


@dataclass(frozen=True)
class Branch:
    """Route to one of several step arms by a driver-side decision."""

    pick: Callable[[ProgramContext], object]
    arms: Mapping[object, Tuple["Step", ...]]

    def run(self, ctx: ProgramContext) -> Optional[ProgramSignal]:
        route = self.pick(ctx)
        try:
            steps = self.arms[route]
        except KeyError:
            raise AlgorithmError(
                f"branch routed to unknown arm {route!r}; "
                f"arms: {sorted(map(repr, self.arms))}"
            ) from None
        return run_steps(steps, ctx)


@dataclass(frozen=True)
class Subprogram:
    """Embed a whole program as one step of another.

    The child runs in the parent's context (shared counters, state,
    levels).  A child ``EXIT`` means the *child* completed — it is
    absorbed, and the parent continues with its next step.
    """

    program: "SuperstepProgram"

    def run(self, ctx: ProgramContext) -> Optional[ProgramSignal]:
        for counter in self.program.counter_names:
            ctx.counters.setdefault(counter, 0)
        signal = run_steps(self.program.steps, ctx)
        if signal is EXIT:
            return None
        return signal


Step = Union[Phase, Loop, Branch, Subprogram]


def run_steps(
    steps: Sequence[Step], ctx: ProgramContext
) -> Optional[ProgramSignal]:
    """Run steps in order; the first signal stops the sequence."""
    for step in steps:
        signal = step.run(ctx)
        if signal is not None:
            return signal
    return None


def iter_phases(steps: Sequence[Step]) -> Iterator[Phase]:
    """Every :class:`Phase` reachable from ``steps``, in program order."""
    for step in steps:
        if isinstance(step, Phase):
            yield step
        elif isinstance(step, Loop):
            yield from iter_phases(step.steps)
        elif isinstance(step, Branch):
            for arm in step.arms.values():
                yield from iter_phases(arm)
        elif isinstance(step, Subprogram):
            yield from iter_phases(step.program.steps)


@dataclass(frozen=True)
class SuperstepProgram:
    """An ordered/looped composition of phases a session executes.

    ``counters`` declares the counter names the program reports; they
    are initialised to 0 before the first step runs, so every run
    returns the same counter schema regardless of which branches fired.
    """

    name: str
    steps: Tuple[Step, ...]
    counters: Tuple[str, ...] = ()
    namespace: str = ""

    @property
    def counter_names(self) -> Tuple[str, ...]:
        return self.counters

    def run(self, ctx: ProgramContext) -> Dict[str, int]:
        """Execute against ``ctx``; returns the counter dictionary."""
        for counter in self.counters:
            ctx.counters.setdefault(counter, 0)
        previous_namespace = ctx.namespace
        if self.namespace:
            ctx.namespace = self.namespace
        try:
            run_steps(self.steps, ctx)
        finally:
            ctx.namespace = previous_namespace
        return ctx.counters

    # -- static introspection (tests, docs, sizing) ----------------------

    def phases(self) -> Tuple[Phase, ...]:
        """Every phase in the program, in program order."""
        return tuple(iter_phases(self.steps))

    def phase_names(self) -> Tuple[str, ...]:
        """Unique trace labels, in first-appearance order."""
        seen: Dict[str, None] = {}
        for phase in self.phases():
            if phase.name is not None and phase.name not in seen:
                seen[phase.name] = None
        return tuple(seen)

    def declared_keys(self) -> Tuple[str, ...]:
        """Union of every phase's declared store keys (program order)."""
        seen: Dict[str, None] = {}
        for phase in self.phases():
            for key in phase.keys:
                if key not in seen:
                    seen[key] = None
        return tuple(seen)

    def price(self, ctx: ProgramContext) -> int:
        """Peak priced words across phases with a pricing hook.

        Phases release their scratch layers before the next allocation
        (the teardown guarantee), so the program's footprint estimate is
        the *maximum* single-phase price, not the sum.
        """
        best = 0
        for phase in self.phases():
            if phase.price is not None:
                best = max(best, int(phase.price(ctx)))
        return best

    def describe(self) -> str:
        """One line per phase: label, declared keys, priced flag."""
        lines = [f"program {self.name}:"]
        for phase in self.phases():
            label = phase.name if phase.name is not None else "(unlabelled)"
            keys = ", ".join(phase.keys) if phase.keys else "-"
            priced = " [priced]" if phase.price is not None else ""
            lines.append(f"  {label}: keys={keys}{priced}")
        return "\n".join(lines)
