"""Deterministic 2-ruling set via degree-class decomposition.

A reconstruction of the improved deterministic MPC 2-ruling set of
Giliberti and Parsaeian (arXiv 2406.12727), the direct successor to the
source paper's sparsify-and-gather engine.  Where the engine of the
source paper pays a seed scan per *sparsification level* (β − 1 levels
per iteration, Θ(log Δ) iterations), this algorithm processes the graph
in **degree classes** whose maximum degree decays doubly exponentially,
so only ``O(log log Δ)`` classes are ever touched:

1. **Class floor.**  With residual maximum degree Δ, set
   ``d_lo = isqrt(Δ)``.  Vertices of degree ≥ d_lo are the *high* class
   this iteration must dominate.
2. **Derandomized sparsification.**  Sample each vertex with rate
   ``q = min(1/2, 4/d_lo)`` via an affine hash seed.  A high vertex with
   no sampled closed neighbour is *uncovered*; by pairwise independence
   and Chebyshev an average seed leaves ≤ 1/4 of the uncovered set
   uncovered, so the batched distributed seed scan (the same
   :func:`repro.derand.seed_search.distributed_scan_seeds` machinery the
   sparsify engine uses) finds a seed halving the uncovered count after
   O(1) candidates.  Committed seeds accumulate — membership in the
   sample is the union over committed seeds, still a pure function of
   the id, so every machine builds the induced sample adjacency with
   **zero communication**.  At most ``log2(n) + 1`` seeds are committed
   before every high vertex is covered.
3. **Solve the sample.**  MIS on the induced sample subgraph — gathered
   to machine 0 for a sequential greedy solve when it fits half a
   machine, else the derandomized distributed Luby engine.  Every high
   vertex is within distance 1 of the sample and every sample vertex is
   within distance 1 of an MIS member, so the high class sits within
   distance 2 of the output.
4. **Remove** everything within 2 hops of the new members.  The entire
   high class is removed, so the residual maximum degree drops below
   ``isqrt(Δ)`` — the doubly-exponential decay.

The loop finishes by gathering the whole residual once it fits one
machine, or by running the Luby engine once the residual degree is ≤ 8.
Members of one iteration are independent (an MIS of an induced
subgraph), and later members are at distance ≥ 2 from earlier ones
(distance-1 neighbours are always removed), so the output is
2-independent; every removed vertex is certifiably within 2 hops of a
member, so the output 2-dominates: a (2, 2)-ruling set, unconditionally
by construction.  As with the sparsify engine, the sampling targets only
govern progress speed.

The implementation is a :class:`~repro.core.program.SuperstepProgram`
built entirely from the shared phase-program framework and
:mod:`repro.core.engine_ops` building blocks — the point of the
refactor is visible here: this module contains only algorithm logic.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.det_luby import det_luby_mis, modulus_for
from repro.core.engine_ops import (
    adjacency_words,
    deactivate_all,
    gather_and_greedy,
    merge_members,
    removal_wave,
)
from repro.core.program import (
    EXIT,
    Branch,
    Loop,
    Phase,
    ProgramContext,
    SuperstepProgram,
)
from repro.derand.family import Seed, threshold_for_rate
from repro.derand.seed_search import distributed_scan_seeds
from repro.errors import AlgorithmError
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.machine import Machine
from repro.mpc.primitives.aggregate import reduce_scalar

GP_IN_SET = "gp_in_set"
GP_ITER = "gp_iter_members"
SAMPLE_ADJ = "gp_sample_adj"

#: Residual degree at which the class loop hands over to the Luby engine.
ENDGAME_DEGREE = 8


def claimed_round_bound(num_vertices: int, max_degree: int) -> int:
    """A concrete, testable ceiling on the round count of one solve.

    ``O(log log Δ)`` degree classes (doubly-exponential decay), each
    paying ``O(log n)`` scan/solve rounds, plus one endgame.  The
    constant is deliberately generous — the bound's job is to be a
    *claimed* complexity function the tests can hold the implementation
    to, mirroring how claimed β is checked by verification.
    """
    blen = max(2, num_vertices).bit_length()
    classes = 2 + max(1, max(2, max_degree).bit_length().bit_length())
    return 80 * (classes + 2) * (blen + 4)


def _class_threshold(p: int, d_lo: int) -> int:
    """Sampling threshold for rate ``q = min(1/2, 4/d_lo)``."""
    if d_lo <= 8:
        return threshold_for_rate(p, 1, 2)
    return threshold_for_rate(p, 4, d_lo)


def gp_program(
    in_set_key: str = GP_IN_SET,
    luby_chooser=None,
    luby_allow_stalls: int = 0,
    max_iterations: Optional[int] = None,
) -> SuperstepProgram:
    """The degree-class 2-ruling set as a phase program.

    Each iteration is an unlabelled measurement phase plus a routed
    branch: ``gp-gather-finish`` (whole residual fits one machine),
    ``gp-endgame-luby`` (residual degree ≤ 8), or the three-phase class
    chain ``gp-sparsify`` → ``gp-solve-sample`` → ``gp-removal-wave``.
    :func:`gp_2ruling_set` runs this program directly; the session
    executes it via the registry's program factory.
    """

    def setup(ctx: ProgramContext) -> None:
        dg, sim = ctx.dg, ctx.sim
        ctx.state["gp_p"] = modulus_for(dg.num_vertices)
        ctx.state["gp_budget"] = sim.config.memory_words // 2
        ctx.state["gp_limit"] = (
            max_iterations
            if max_iterations is not None
            else 2 + max(1, dg.num_vertices.bit_length())
        )

        def ensure_sets(machine: Machine) -> None:
            if in_set_key not in machine.store:
                machine.store[in_set_key] = set()
            machine.store[GP_ITER] = set()

        sim.local(ensure_sets)

    def measure(ctx: ProgramContext):
        n_act, m_act, words = adjacency_words(ctx.dg, ADJ)
        if n_act == 0:
            return EXIT
        ctx.state["gp_words"] = words
        return None

    def route(ctx: ProgramContext) -> None:
        if ctx.state["gp_words"] <= ctx.state["gp_budget"]:
            ctx.state["gp_route"] = "gather"
            return
        max_deg = ctx.dg.max_active_degree(ADJ)
        if max_deg <= ENDGAME_DEGREE:
            ctx.state["gp_route"] = "endgame"
            return
        ctx.state["gp_route"] = "class"
        ctx.state["gp_max_deg"] = max_deg

    def gather_finish(ctx: ProgramContext):
        members = gather_and_greedy(ctx.dg, ADJ, GP_ITER)
        ctx.counters["gather_finishes"] += 1
        ctx.counters["members"] += members
        merge_members(ctx.sim, in_set_key, GP_ITER)
        deactivate_all(ctx.dg, ADJ)
        return EXIT

    def endgame(ctx: ProgramContext):
        sub = det_luby_mis(
            ctx.dg, adj_key=ADJ, in_set_key=GP_ITER,
            chooser=luby_chooser, allow_stalls=luby_allow_stalls,
        )
        ctx.counters["endgame_luby"] += 1
        ctx.counters["seed_candidates"] += sub["seed_candidates"]
        ctx.counters["members"] += merge_members(ctx.sim, in_set_key, GP_ITER)
        return EXIT

    def sparsify(ctx: ProgramContext) -> None:
        """Commit seeds until every high-class vertex is covered."""
        dg, sim = ctx.dg, ctx.sim
        p = ctx.state["gp_p"]
        d_lo = math.isqrt(ctx.state.pop("gp_max_deg"))
        threshold = _class_threshold(p, d_lo)
        ctx.counters["classes"] += 1

        # The uncovered table: each machine keeps the closed neighbour
        # lists of its still-uncovered high-class vertices, filtered in
        # place as seeds commit, so every scan candidate is scored
        # against exactly the remaining uncovered set.
        def stage_uncovered(machine: Machine) -> None:
            adj = machine.store[ADJ]
            machine.store["_gp_uncov"] = {
                v: nbrs for v, nbrs in adj.items() if len(nbrs) >= d_lo
            }

        sim.local(stage_uncovered)
        uncovered = reduce_scalar(
            sim, lambda m: len(m.store["_gp_uncov"]), lambda a, b: a + b
        )
        committed: List[Seed] = []
        scan_start = 0
        commit_cap = 2 + max(2, dg.num_vertices).bit_length()
        while uncovered > 0:
            if len(committed) >= commit_cap:
                raise AlgorithmError(
                    "degree-class sparsification failed to cover the "
                    f"high class within {commit_cap} committed seeds"
                )

            def local_stats(machine: Machine, seed: Seed) -> Tuple[int]:
                # Still-uncovered count under committed ∪ {candidate}:
                # a vertex stays uncovered when neither it nor any
                # neighbour hashes below the threshold.
                t = threshold
                still = 0
                for v, nbrs in machine.store["_gp_uncov"].items():
                    if seed.hash(v) < t:
                        continue
                    if any(seed.hash(u) < t for u in nbrs):
                        continue
                    still += 1
                return (still,)

            def accept(stats: Tuple[int, ...]) -> bool:
                return 2 * stats[0] <= uncovered

            seed, stats, scan = distributed_scan_seeds(
                sim,
                p,
                local_stats,
                stat_width=1,
                accept=accept,
                start_index=scan_start,
            )
            scan_start += scan.candidates_scanned
            committed.append(seed)
            ctx.counters["scans"] += 1
            ctx.counters["seed_candidates"] += scan.candidates_scanned
            uncovered = stats[0]

            def drop_covered(machine: Machine, s=seed) -> None:
                t = threshold
                machine.store["_gp_uncov"] = {
                    v: nbrs
                    for v, nbrs in machine.store["_gp_uncov"].items()
                    if s.hash(v) >= t
                    and not any(s.hash(u) < t for u in nbrs)
                }

            sim.local(drop_covered)

        ctx.release("_gp_uncov")

        # Sample membership is a pure function of the id given the
        # committed seed list — the induced adjacency needs no rounds.
        def build_sample(machine: Machine) -> None:
            t = threshold

            def sampled(v: int) -> bool:
                return any(s.hash(v) < t for s in committed)

            adj = machine.store[ADJ]
            machine.store[SAMPLE_ADJ] = {
                v: tuple(u for u in nbrs if sampled(u))
                for v, nbrs in adj.items()
                if sampled(v)
            }

        sim.local(build_sample)
        ctx.push_level(SAMPLE_ADJ)

    def solve_sample(ctx: ProgramContext) -> None:
        dg, sim = ctx.dg, ctx.sim
        n_smp, m_smp, smp_words = adjacency_words(dg, SAMPLE_ADJ)
        if smp_words <= ctx.state["gp_budget"]:
            members = gather_and_greedy(dg, SAMPLE_ADJ, GP_ITER)
            ctx.counters["class_gathers"] += 1
        else:
            sub = det_luby_mis(
                dg, adj_key=SAMPLE_ADJ, in_set_key=GP_ITER,
                chooser=luby_chooser, allow_stalls=luby_allow_stalls,
            )
            ctx.counters["class_luby_solves"] += 1
            ctx.counters["seed_candidates"] += sub["seed_candidates"]
            members = reduce_scalar(
                sim, lambda m: len(m.store[GP_ITER]), lambda a, b: a + b
            )
        if members == 0:
            raise AlgorithmError(
                "class solver produced no members from a non-empty sample"
            )
        ctx.counters["members"] += members

    def remove(ctx: ProgramContext) -> None:
        removal_wave(ctx.dg, GP_ITER, 2)
        merge_members(ctx.sim, in_set_key, GP_ITER)
        ctx.release_levels()

    return SuperstepProgram(
        name="degree-class",
        counters=(
            "classes",
            "scans",
            "seed_candidates",
            "class_gathers",
            "class_luby_solves",
            "gather_finishes",
            "endgame_luby",
            "members",
        ),
        steps=(
            Phase(setup, keys=(in_set_key, GP_ITER)),
            Loop(
                steps=(
                    Phase(measure),
                    Phase(route, name="gp-degree-class"),
                    Branch(
                        pick=lambda ctx: ctx.state.pop("gp_route"),
                        arms={
                            "gather": (
                                Phase(
                                    gather_finish, name="gp-gather-finish"
                                ),
                            ),
                            "endgame": (
                                Phase(endgame, name="gp-endgame-luby"),
                            ),
                            "class": (
                                Phase(
                                    sparsify,
                                    name="gp-sparsify",
                                    keys=("_gp_uncov", SAMPLE_ADJ),
                                ),
                                Phase(solve_sample, name="gp-solve-sample"),
                                Phase(remove, name="gp-removal-wave"),
                            ),
                        },
                    ),
                ),
                limit=lambda ctx: ctx.state["gp_limit"],
                exhausted=lambda ctx: AlgorithmError(
                    "degree-class decomposition did not finish in "
                    f"{ctx.state['gp_limit']} iterations"
                ),
            ),
        ),
    )


def gp_2ruling_set(
    dg: DistributedGraph,
    in_set_key: str = GP_IN_SET,
    luby_chooser=None,
    luby_allow_stalls: int = 0,
    max_iterations: Optional[int] = None,
) -> Dict[str, int]:
    """Compute a (2, 2)-ruling set of the active graph.

    Members accumulate per machine under ``store[in_set_key]``; collect
    with ``dg.collect_marked(in_set_key)``.  Returns the counter dict
    (classes, scans, seed candidates, solver choices, members).

    This is a thin wrapper over :func:`gp_program`.
    """
    program = gp_program(
        in_set_key=in_set_key,
        luby_chooser=luby_chooser,
        luby_allow_stalls=luby_allow_stalls,
        max_iterations=max_iterations,
    )
    return program.run(ProgramContext(dg))
