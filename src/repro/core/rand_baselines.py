"""Randomized baselines sharing the deterministic engines' code paths.

The randomized MIS and ruling-set baselines are the *same* algorithms as
:func:`repro.core.det_luby.det_luby_mis` and
:func:`repro.core.det_ruling.det_ruling_set` with one substitution: the
seed chooser **draws** a hash seed from the pairwise-independent family
instead of *searching* for one.  Pairwise independence already yields the
expected per-phase progress (Luby's analysis; Chebyshev coverage), so the
baselines are bona fide randomized MPC algorithms — and any benchmarked
difference against the deterministic variants is, by construction,
exactly the cost of derandomization (the E1/E7 measurements).

Each drawn seed is broadcast from machine 0 so that the run does not
assume free shared randomness; that costs the same O(1) rounds a real
randomized MPC implementation would pay to agree on public coins.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.det_luby import det_luby_mis
from repro.core.det_ruling import det_ruling_set
from repro.derand.family import Seed
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.primitives.broadcast import broadcast_value
from repro.util.rng import SplitMix64


def random_luby_chooser(rng: SplitMix64):
    """Luby seed chooser that draws ``(a, b)`` uniformly and broadcasts."""

    def choose(sim, p: int) -> Tuple[Seed, int]:
        seed = Seed(a=rng.next_below(p), b=rng.next_below(p), p=p)
        broadcast_value(sim, (seed.a, seed.b), "_rand_seed")
        return seed, 1

    return choose


def random_sampling_chooser(rng: SplitMix64):
    """Sampling chooser that draws a seed per level, no scanning."""

    def choose(
        dg: DistributedGraph,
        p: int,
        adj_key: str,
        threshold: int,
        high_degree: int,
        n_level: int,
        n_high: int,
    ) -> Tuple[Seed, int]:
        seed = Seed(a=rng.next_below(p), b=rng.next_below(p), p=p)
        broadcast_value(dg.sim, (seed.a, seed.b), "_rand_seed")
        return seed, 1

    return choose


def rand_luby_program(
    adj_key: str = ADJ,
    in_set_key: str = "luby_in_set",
    seed: int = 0,
    max_phases: int = 10_000,
):
    """The randomized Luby baseline as a phase program (drawn seeds)."""
    from repro.core.det_luby import luby_program

    rng = SplitMix64(seed=seed)
    return luby_program(
        adj_key=adj_key,
        in_set_key=in_set_key,
        chooser=random_luby_chooser(rng),
        max_phases=max_phases,
        allow_stalls=64,
    )


def rand_luby_mis(
    dg: DistributedGraph,
    adj_key: str = ADJ,
    in_set_key: str = "luby_in_set",
    seed: int = 0,
    max_phases: int = 10_000,
) -> Dict[str, int]:
    """Randomized Luby MIS in MPC (the E1/E8 baseline).

    Tolerates a bounded number of consecutive unlucky (zero-progress)
    phases; with pairwise-independent marking those are rare.
    """
    rng = SplitMix64(seed=seed)
    return det_luby_mis(
        dg,
        adj_key=adj_key,
        in_set_key=in_set_key,
        chooser=random_luby_chooser(rng),
        max_phases=max_phases,
        allow_stalls=64,
    )


def rand_ruling_program(
    beta: int = 2,
    in_set_key: str = "rs_in_set",
    seed: int = 0,
    endgame_degree: int = 4,
):
    """The randomized ruling-set baseline as a phase program."""
    from repro.core.det_ruling import ruling_program

    rng = SplitMix64(seed=seed)
    return ruling_program(
        beta=beta,
        in_set_key=in_set_key,
        chooser=random_sampling_chooser(rng.fork(1)),
        luby_chooser=random_luby_chooser(rng.fork(2)),
        luby_allow_stalls=64,
        endgame_degree=endgame_degree,
    )


def rand_ruling_set(
    dg: DistributedGraph,
    beta: int = 2,
    in_set_key: str = "rs_in_set",
    seed: int = 0,
    endgame_degree: int = 4,
) -> Dict[str, int]:
    """Randomized sparsify-and-gather ``(2, β)``-ruling set baseline."""
    rng = SplitMix64(seed=seed)
    return det_ruling_set(
        dg,
        beta=beta,
        in_set_key=in_set_key,
        chooser=random_sampling_chooser(rng.fork(1)),
        luby_chooser=random_luby_chooser(rng.fork(2)),
        luby_allow_stalls=64,
        endgame_degree=endgame_degree,
    )
