"""Sequential greedy oracles.

``greedy_mis`` is the canonical sequential MIS — the reference every
distributed MIS is compared against, and also the *local solver* that the
MPC sparsify-and-gather algorithm runs on machine 0 once a subgraph has
been gathered.  ``greedy_ruling_set`` generalises it to ``(alpha, beta)``
with ``beta = alpha - 1`` (the greedy guarantee).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AlgorithmError
from repro.graph.graph import Graph


def greedy_mis(
    graph: Graph, order: Optional[Sequence[int]] = None
) -> List[int]:
    """Greedy maximal independent set in the given vertex order.

    >>> greedy_mis(Graph.from_edges(3, [(0, 1), (1, 2)]))
    [0, 2]
    """
    scan = list(order) if order is not None else list(graph.vertices())
    if sorted(scan) != list(graph.vertices()):
        raise AlgorithmError("order must be a permutation of the vertices")
    blocked = [False] * graph.num_vertices
    members = []
    for v in scan:
        if blocked[v]:
            continue
        members.append(v)
        blocked[v] = True
        for u in graph.neighbors(v):
            blocked[u] = True
    return sorted(members)


def greedy_mis_on_edges(
    vertices: Sequence[int], edges: Sequence[Tuple[int, int]]
) -> List[int]:
    """Greedy MIS over an edge list with arbitrary (sparse) vertex ids.

    This is the solver machine 0 runs on a gathered subgraph, where ids
    are original graph ids rather than dense ones.

    >>> greedy_mis_on_edges([5, 7, 9], [(5, 7), (7, 9)])
    [5, 9]
    """
    adjacency: Dict[int, List[int]] = {v: [] for v in vertices}
    for u, v in edges:
        if u not in adjacency or v not in adjacency:
            raise AlgorithmError(f"edge ({u}, {v}) references unknown vertex")
        adjacency[u].append(v)
        adjacency[v].append(u)
    blocked: Dict[int, bool] = {v: False for v in adjacency}
    members = []
    for v in sorted(adjacency):
        if blocked[v]:
            continue
        members.append(v)
        for u in adjacency[v]:
            blocked[u] = True
    return members


def greedy_ruling_set(graph: Graph, alpha: int = 2) -> List[int]:
    """Greedy ``(alpha, alpha - 1)``-ruling set by increasing vertex id.

    Scans vertices in id order, adding each vertex at distance >= alpha
    from the current set; a skipped vertex is within alpha - 1 of the set
    (the member that blocked it), hence β = alpha - 1.

    >>> greedy_ruling_set(Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)]), 3)
    [0, 3]
    """
    if alpha < 1:
        raise AlgorithmError(f"alpha must be >= 1, got {alpha}")
    n = graph.num_vertices
    dist_to_set = [None] * n  # distances < alpha tracked, else None
    members = []
    for v in range(n):
        if dist_to_set[v] is not None:
            continue
        members.append(v)
        # BFS to depth alpha - 1, claiming vertices closer than alpha.
        frontier = deque([(v, 0)])
        seen = {v}
        dist_to_set[v] = 0
        while frontier:
            u, d = frontier.popleft()
            if d == alpha - 1:
                continue
            for w in graph.neighbors(u):
                if w in seen:
                    continue
                seen.add(w)
                if dist_to_set[w] is None or dist_to_set[w] > d + 1:
                    dist_to_set[w] = d + 1
                frontier.append((w, d + 1))
    return members
