"""Deterministic ``(2, β)``-ruling sets via derandomized sparsify-and-gather.

This is the reconstruction of the paper's headline algorithm.  Each
iteration of the main loop:

1. **Sparsify** (β − 1 levels).  Level ``j`` samples
   ``X_j = {v ∈ X_{j-1} : h_j(v) < T_j}`` with rate
   ``q_j = min(1/2, 4/√Δ_j)`` using a hash seed chosen by a *batched
   distributed seed scan* against two targets:

   * size: ``|X_j| · p ≤ 3 · |X_{j-1}| · T_j``  (Markov, fails w.p. < 1/3)
   * coverage: at most half the vertices of degree ≥ ``8/q_j`` lack a
     sampled neighbour (pairwise independence + Chebyshev gives
     ``Pr[no sampled neighbour] ≤ 1/(deg·q) ≤ 1/8`` per such vertex, so
     the target fails w.p. ≤ 1/4).

   At least a ``5/12`` fraction of the family meets both targets, so the
   deterministic scan commits after O(1) batches.  Because membership in
   ``X_j`` is a pure function of the *id*, each machine builds the induced
   level-``j`` adjacency with **zero communication**.

2. **Solve** the deepest level: gather its subgraph to machine 0 and run
   greedy MIS there if it fits half a machine's memory, otherwise fall
   back to the distributed derandomized Luby MIS on that level.

3. **Remove** everything within β hops of the new members (a β-round
   flag wave on the original adjacency), so every removed vertex is
   certifiably within β of the output and later members stay independent
   of earlier ones (distance-1 neighbours are always removed).

The loop ends by gathering the whole residual graph once it fits, or by
running Luby when its degree is tiny.  Correctness — 2-independence and
β-domination — holds *unconditionally by construction*; the sampling
targets only govern progress speed.  The randomized baseline runs the
same engine with a draw-don't-scan seed chooser, so benchmark deltas
isolate exactly the derandomization cost.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.det_luby import det_luby_mis, modulus_for
from repro.core.greedy import greedy_mis_on_edges
from repro.derand.family import Seed, threshold_for_rate
from repro.derand.seed_search import distributed_scan_seeds
from repro.errors import AlgorithmError
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.machine import Machine
from repro.mpc.message import Message
from repro.mpc.primitives.aggregate import reduce_scalar
from repro.mpc.state_layout import (
    KERNEL_NUMPY,
    BoundedCache,
    MachineCSR,
    kernel_of,
    numpy_or_none,
    supports_modulus,
)

IN_SET = "rs_in_set"
ITER_MEMBERS = "rs_iter_members"

# A sampling chooser returns (seed, candidates_scanned) for one level.
SamplingChooser = Callable[
    ["DistributedGraph", int, str, int, int, int, int], Tuple[Seed, int]
]


def scanning_chooser(batch: int = 32, max_batches: int = 512) -> SamplingChooser:
    """Deterministic chooser: batched scan against size+coverage targets."""

    def choose(
        dg: DistributedGraph,
        p: int,
        adj_key: str,
        threshold: int,
        high_degree: int,
        n_level: int,
        n_high: int,
    ) -> Tuple[Seed, int]:
        np_mod = (
            numpy_or_none()
            if kernel_of(dg.sim) == KERNEL_NUMPY and supports_modulus(p)
            else None
        )
        # The adjacency layer is immutable for the duration of one scan,
        # so each machine's CSR view is built once and reused across
        # every candidate seed in every batch — bounded to the backend's
        # resident-machine count so an out-of-core run never accumulates
        # CSR views for machines whose state is spilled.
        csr_cache = BoundedCache(dg.sim.backend.resident_machines_hint())

        def local_stats(machine: Machine, seed: Seed) -> Tuple[int, int]:
            adj = machine.store[adj_key]
            if np_mod is not None:
                csr = csr_cache.get(machine.mid)
                if csr is None:
                    csr = MachineCSR.from_adjacency(adj, np_mod)
                    csr_cache.put(machine.mid, csr)
                sampled = int((csr.hash_ids(seed) < threshold).sum())
                covered = csr.row_any(csr.hash_indices(seed) < threshold)
                uncovered_high = int(
                    ((csr.degrees >= high_degree) & ~covered).sum()
                )
                return (sampled, uncovered_high)
            sampled = 0
            uncovered_high = 0
            for v, neighbors in adj.items():
                if seed.hash(v) < threshold:
                    sampled += 1
                if len(neighbors) >= high_degree and not any(
                    seed.hash(u) < threshold for u in neighbors
                ):
                    uncovered_high += 1
            return (sampled, uncovered_high)

        def accept(stats: Tuple[int, ...]) -> bool:
            sampled, uncovered_high = stats
            # Size: E[|X|] = n*T/p and Var <= E under pairwise
            # independence, so Chebyshev bounds Pr[|X| > 1.5E + 4] by
            # E/(E/2 + 4)^2 — a 1.5x multiplicative target (plus absolute
            # slack 4) keeps a constant family fraction acceptable while
            # excluding degenerate near-full samples, which a 3x Markov
            # target would admit at rate 1/2.
            size_ok = 2 * sampled * p <= 3 * n_level * threshold + 8 * p
            coverage_ok = 2 * uncovered_high <= n_high
            return size_ok and coverage_ok

        seed, _, scan = distributed_scan_seeds(
            dg.sim,
            p,
            local_stats,
            stat_width=2,
            accept=accept,
            batch=batch,
            max_batches=max_batches,
        )
        return seed, scan.candidates_scanned

    return choose


def _sampling_rate(max_degree: int) -> Tuple[int, int]:
    """Rate ``q = min(1/2, 4/isqrt(Δ))`` as an exact fraction."""
    root = math.isqrt(max(1, max_degree))
    if root <= 8:
        return (1, 2)
    return (4, root)


def _adjacency_words(dg: DistributedGraph, adj_key: str) -> Tuple[int, int, int]:
    """Return ``(n_active, m_active, words)`` for one adjacency layer."""
    sim = dg.sim

    def extract(machine: Machine) -> Tuple[int, ...]:
        adj = machine.store[adj_key]
        return (
            len(adj),
            sum(len(nbrs) for nbrs in adj.values()),
        )

    from repro.mpc.primitives.aggregate import reduce_vector

    n_active, directed = reduce_vector(
        sim, extract, lambda a, b: (a[0] + b[0], a[1] + b[1]), width=2
    )
    return n_active, directed // 2, directed + n_active


def _gather_and_greedy(
    dg: DistributedGraph, adj_key: str, members_key: str
) -> int:
    """Gather the ``adj_key`` subgraph to machine 0, solve, scatter members.

    Flags every active vertex of the layer, ships the subgraph, runs
    greedy MIS at machine 0, and sends each member id to its owner, which
    records it under ``members_key``.  Returns the member count.  Costs 4
    rounds.
    """
    sim = dg.sim

    def flag_all(machine: Machine) -> None:
        machine.store["_rs_gather_flag"] = sorted(machine.store[adj_key])

    sim.local(flag_all)
    dg.gather_flagged_to_zero(
        "_rs_gather_flag", "_rs_gv", "_rs_ge", adj_key=adj_key
    )

    def solve_and_scatter(machine: Machine) -> List[Message]:
        machine.store.pop("_rs_gather_flag")
        if machine.mid != 0:
            return []
        vertices = machine.store.pop("_rs_gv")
        edges = machine.store.pop("_rs_ge")
        members = greedy_mis_on_edges(vertices, edges)
        return [Message(dg.owner_of(v), (v,)) for v in members]

    sim.communicate(solve_and_scatter)

    def record(machine: Machine) -> None:
        for payload in machine.inbox:
            machine.store[members_key].add(payload[0])
        machine.clear_inbox()

    sim.local(record)
    return reduce_scalar(
        sim, lambda m: len(m.store[members_key]), lambda a, b: a + b
    )


def _removal_wave(
    dg: DistributedGraph, members_key: str, beta: int
) -> int:
    """Deactivate every active vertex within β hops of the new members.

    β rounds of flag pushes on the base adjacency plus one deactivation
    round.  Returns the number of vertices removed.
    """
    sim = dg.sim

    def seed_wave(machine: Machine) -> None:
        members = set(machine.store[members_key])
        active = set(machine.store[ADJ])
        machine.store["_rs_frontier"] = sorted(members & active)
        machine.store["_rs_removed"] = members & active

    sim.local(seed_wave)
    for _ in range(beta):
        dg.push_flags("_rs_frontier", "_rs_hit", adj_key=ADJ)

        def advance(machine: Machine) -> None:
            removed = machine.store["_rs_removed"]
            hit = machine.store.pop("_rs_hit")
            newly = {
                v
                for v in hit
                if v not in removed and v in machine.store[ADJ]
            }
            removed.update(newly)
            machine.store["_rs_frontier"] = sorted(newly)

        sim.local(advance)

    def finalize(machine: Machine) -> None:
        machine.store.pop("_rs_frontier")
        machine.store["_rs_removed"] = set(machine.store["_rs_removed"])
        machine.store["_rs_removed_count"] = len(machine.store["_rs_removed"])

    sim.local(finalize)
    removed_total = sum(
        sim.harvest(lambda m: m.store.pop("_rs_removed_count"))
    )
    dg.deactivate("_rs_removed", adj_key=ADJ)
    return removed_total


def det_ruling_set(
    dg: DistributedGraph,
    beta: int = 2,
    in_set_key: str = IN_SET,
    chooser: Optional[SamplingChooser] = None,
    luby_chooser=None,
    luby_allow_stalls: int = 0,
    endgame_degree: int = 4,
    max_iterations: Optional[int] = None,
) -> Dict[str, int]:
    """Compute a ``(2, β)``-ruling set of the active graph; β >= 2.

    Members accumulate per machine under ``store[in_set_key]``; collect
    with ``dg.collect_marked(in_set_key)``.  Returns a counter dict
    (iterations, sparsify levels, seed candidates, solver choices).

    ``chooser`` selects sampling seeds (default: the deterministic
    batched scan); ``luby_chooser`` is forwarded to the Luby engine when
    it is used as the level solver or endgame (default: deterministic
    conditional expectations).
    """
    if beta < 2:
        raise AlgorithmError(
            "det_ruling_set needs beta >= 2; use det_luby_mis for an MIS"
        )
    sim = dg.sim
    p = modulus_for(dg.num_vertices)
    np_mod = (
        numpy_or_none()
        if kernel_of(sim) == KERNEL_NUMPY and supports_modulus(p)
        else None
    )
    choose = chooser if chooser is not None else scanning_chooser()
    budget = sim.config.memory_words // 2
    limit = (
        max_iterations
        if max_iterations is not None
        else dg.num_vertices + 2
    )
    counters = {
        "iterations": 0,
        "levels_built": 0,
        "seed_candidates": 0,
        "gather_finishes": 0,
        "level_gathers": 0,
        "level_luby_solves": 0,
        "endgame_luby": 0,
        "members": 0,
    }

    def ensure_sets(machine: Machine) -> None:
        if in_set_key not in machine.store:
            machine.store[in_set_key] = set()
        machine.store[ITER_MEMBERS] = set()

    sim.local(ensure_sets)

    for _ in range(limit):
        n_act, m_act, words = _adjacency_words(dg, ADJ)
        if n_act == 0:
            return counters
        counters["iterations"] += 1
        sim.begin_phase("ruling-iteration")

        # ---- endgame: whole residual fits one machine ------------------
        if words <= budget:
            sim.begin_phase("ruling-gather-finish")
            members = _gather_and_greedy(dg, ADJ, ITER_MEMBERS)
            counters["gather_finishes"] += 1
            counters["members"] += members
            _merge_members(sim, in_set_key)
            _deactivate_all(dg, ADJ)
            return counters

        # ---- endgame: residual degree tiny -----------------------------
        max_deg = dg.max_active_degree(ADJ)
        if max_deg <= endgame_degree:
            sim.begin_phase("ruling-endgame-luby")
            sub = det_luby_mis(
                dg, adj_key=ADJ, in_set_key=ITER_MEMBERS,
                chooser=luby_chooser, allow_stalls=luby_allow_stalls,
            )
            counters["endgame_luby"] += 1
            counters["seed_candidates"] += sub["seed_candidates"]
            counters["members"] += _merge_members(sim, in_set_key)
            return counters

        # ---- sparsification chain --------------------------------------
        sim.begin_phase("ruling-sparsify")
        prev_key = ADJ
        level_keys: List[str] = []
        level_degree = max_deg
        for level in range(1, beta):
            rate_num, rate_den = _sampling_rate(level_degree)
            threshold = threshold_for_rate(p, rate_num, rate_den)
            high_degree = -(-8 * rate_den // rate_num)  # ceil(8 / q)
            n_level = dg.count_active(prev_key)
            n_high = reduce_scalar(
                sim,
                lambda m, hk=prev_key, hd=high_degree: sum(
                    1
                    for nbrs in m.store[hk].values()
                    if len(nbrs) >= hd
                ),
                lambda a, b: a + b,
            )
            seed, scanned = choose(
                dg, p, prev_key, threshold, high_degree, n_level, n_high
            )
            counters["seed_candidates"] += scanned
            counters["levels_built"] += 1
            new_key = f"rs_level{level}_adj"
            level_keys.append(new_key)

            def build_level(
                machine: Machine, src=prev_key, dst=new_key,
                s=seed, t=threshold,
            ) -> None:
                adj = machine.store[src]
                if np_mod is not None:
                    # Same rows, same order, same tuples — computed by
                    # array masks instead of per-entry hash calls.
                    machine.store[dst] = MachineCSR.from_adjacency(
                        adj, np_mod
                    ).sampled_subgraph(s, t)
                    return
                machine.store[dst] = {
                    v: tuple(u for u in nbrs if s.hash(u) < t)
                    for v, nbrs in adj.items()
                    if s.hash(v) < t
                }

            sim.local(build_level)
            prev_key = new_key
            n_lvl, m_lvl, lvl_words = _adjacency_words(dg, prev_key)
            if n_lvl == 0 or lvl_words <= budget:
                break
            level_degree = dg.max_active_degree(prev_key)
            if level_degree <= endgame_degree:
                break

        # ---- solve the deepest level ------------------------------------
        sim.begin_phase("ruling-solve-level")
        n_deep, m_deep, deep_words = _adjacency_words(dg, prev_key)
        if n_deep == 0:
            # Sampling emptied out (legal but rare): make guaranteed
            # progress with one full Luby MIS on the residual graph.
            sub = det_luby_mis(
                dg, adj_key=ADJ, in_set_key=ITER_MEMBERS,
                chooser=luby_chooser, allow_stalls=luby_allow_stalls,
            )
            counters["endgame_luby"] += 1
            counters["seed_candidates"] += sub["seed_candidates"]
            counters["members"] += _merge_members(sim, in_set_key)
            _cleanup_levels(sim, level_keys)
            return counters
        if deep_words <= budget:
            members = _gather_and_greedy(dg, prev_key, ITER_MEMBERS)
            counters["level_gathers"] += 1
        else:
            sub = det_luby_mis(
                dg, adj_key=prev_key, in_set_key=ITER_MEMBERS,
                chooser=luby_chooser, allow_stalls=luby_allow_stalls,
            )
            counters["level_luby_solves"] += 1
            counters["seed_candidates"] += sub["seed_candidates"]
            members = reduce_scalar(
                sim, lambda m: len(m.store[ITER_MEMBERS]), lambda a, b: a + b
            )
        if members == 0:
            raise AlgorithmError(
                "level solver produced no members from a non-empty level"
            )
        counters["members"] += members

        # ---- removal wave ------------------------------------------------
        sim.begin_phase("ruling-removal-wave")
        _removal_wave(dg, ITER_MEMBERS, beta)
        _merge_members(sim, in_set_key)
        _cleanup_levels(sim, level_keys)

    raise AlgorithmError(f"ruling set did not finish in {limit} iterations")


def _merge_members(sim, in_set_key: str) -> int:
    """Fold this iteration's members into the global set; return count."""

    def merge(machine: Machine) -> None:
        new_members = machine.store[ITER_MEMBERS]
        machine.store["_rs_merged"] = len(new_members)
        machine.store[in_set_key].update(new_members)
        machine.store[ITER_MEMBERS] = set()

    sim.local(merge)
    return sum(sim.harvest(lambda m: m.store.pop("_rs_merged")))


def _cleanup_levels(sim, level_keys: List[str]) -> None:
    """Drop per-iteration level adjacency layers."""

    def cleanup(machine: Machine) -> None:
        for key in level_keys:
            machine.store.pop(key, None)

    sim.local(cleanup)


def _deactivate_all(dg: DistributedGraph, adj_key: str) -> None:
    """Remove every remaining active vertex (after a gather-finish)."""

    def mark_all(machine: Machine) -> None:
        machine.store["_rs_all"] = set(machine.store[adj_key])

    dg.sim.local(mark_all)
    dg.deactivate("_rs_all", adj_key=adj_key)
