"""Deterministic ``(2, β)``-ruling sets via derandomized sparsify-and-gather.

This is the reconstruction of the paper's headline algorithm.  Each
iteration of the main loop:

1. **Sparsify** (β − 1 levels).  Level ``j`` samples
   ``X_j = {v ∈ X_{j-1} : h_j(v) < T_j}`` with rate
   ``q_j = min(1/2, 4/√Δ_j)`` using a hash seed chosen by a *batched
   distributed seed scan* against two targets:

   * size: ``|X_j| · p ≤ 3 · |X_{j-1}| · T_j``  (Markov, fails w.p. < 1/3)
   * coverage: at most half the vertices of degree ≥ ``8/q_j`` lack a
     sampled neighbour (pairwise independence + Chebyshev gives
     ``Pr[no sampled neighbour] ≤ 1/(deg·q) ≤ 1/8`` per such vertex, so
     the target fails w.p. ≤ 1/4).

   At least a ``5/12`` fraction of the family meets both targets, so the
   deterministic scan commits after O(1) batches.  Because membership in
   ``X_j`` is a pure function of the *id*, each machine builds the induced
   level-``j`` adjacency with **zero communication**.

2. **Solve** the deepest level: gather its subgraph to machine 0 and run
   greedy MIS there if it fits half a machine's memory, otherwise fall
   back to the distributed derandomized Luby MIS on that level.

3. **Remove** everything within β hops of the new members (a β-round
   flag wave on the original adjacency), so every removed vertex is
   certifiably within β of the output and later members stay independent
   of earlier ones (distance-1 neighbours are always removed).

The loop ends by gathering the whole residual graph once it fits, or by
running Luby when its degree is tiny.  Correctness — 2-independence and
β-domination — holds *unconditionally by construction*; the sampling
targets only govern progress speed.  The randomized baseline runs the
same engine with a draw-don't-scan seed chooser, so benchmark deltas
isolate exactly the derandomization cost.

The engine is expressed as a :class:`~repro.core.program.
SuperstepProgram` (see :func:`ruling_program`); the shared superstep
building blocks (gather-and-greedy, removal wave, layer accounting) live
in :mod:`repro.core.engine_ops`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.det_luby import det_luby_mis, modulus_for
from repro.core.engine_ops import (
    adjacency_words,
    deactivate_all,
    gather_and_greedy,
    merge_members,
    removal_wave,
    sampling_rate,
)
from repro.core.program import (
    EXIT,
    Branch,
    Loop,
    Phase,
    ProgramContext,
    SuperstepProgram,
)
from repro.derand.family import Seed, threshold_for_rate
from repro.derand.seed_search import distributed_scan_seeds
from repro.errors import AlgorithmError
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.machine import Machine
from repro.mpc.primitives.aggregate import reduce_scalar
from repro.mpc.state_layout import (
    KERNEL_NUMPY,
    BoundedCache,
    MachineCSR,
    kernel_of,
    numpy_or_none,
    supports_modulus,
)

IN_SET = "rs_in_set"
ITER_MEMBERS = "rs_iter_members"

# Historical alias: the rate helper moved to engine_ops; tests and the
# randomized baseline still import it from here.
_sampling_rate = sampling_rate

# A sampling chooser returns (seed, candidates_scanned) for one level.
SamplingChooser = Callable[
    ["DistributedGraph", int, str, int, int, int, int], Tuple[Seed, int]
]


def scanning_chooser(batch: int = 32, max_batches: int = 512) -> SamplingChooser:
    """Deterministic chooser: batched scan against size+coverage targets."""

    def choose(
        dg: DistributedGraph,
        p: int,
        adj_key: str,
        threshold: int,
        high_degree: int,
        n_level: int,
        n_high: int,
    ) -> Tuple[Seed, int]:
        np_mod = (
            numpy_or_none()
            if kernel_of(dg.sim) == KERNEL_NUMPY and supports_modulus(p)
            else None
        )
        # The adjacency layer is immutable for the duration of one scan,
        # so each machine's CSR view is built once and reused across
        # every candidate seed in every batch — bounded to the backend's
        # resident-machine count so an out-of-core run never accumulates
        # CSR views for machines whose state is spilled.
        csr_cache = BoundedCache(dg.sim.backend.resident_machines_hint())

        def local_stats(machine: Machine, seed: Seed) -> Tuple[int, int]:
            adj = machine.store[adj_key]
            if np_mod is not None:
                csr = csr_cache.get(machine.mid)
                if csr is None:
                    csr = MachineCSR.from_adjacency(adj, np_mod)
                    csr_cache.put(machine.mid, csr)
                sampled = int((csr.hash_ids(seed) < threshold).sum())
                covered = csr.row_any(csr.hash_indices(seed) < threshold)
                uncovered_high = int(
                    ((csr.degrees >= high_degree) & ~covered).sum()
                )
                return (sampled, uncovered_high)
            sampled = 0
            uncovered_high = 0
            for v, neighbors in adj.items():
                if seed.hash(v) < threshold:
                    sampled += 1
                if len(neighbors) >= high_degree and not any(
                    seed.hash(u) < threshold for u in neighbors
                ):
                    uncovered_high += 1
            return (sampled, uncovered_high)

        def accept(stats: Tuple[int, ...]) -> bool:
            sampled, uncovered_high = stats
            # Size: E[|X|] = n*T/p and Var <= E under pairwise
            # independence, so Chebyshev bounds Pr[|X| > 1.5E + 4] by
            # E/(E/2 + 4)^2 — a 1.5x multiplicative target (plus absolute
            # slack 4) keeps a constant family fraction acceptable while
            # excluding degenerate near-full samples, which a 3x Markov
            # target would admit at rate 1/2.
            size_ok = 2 * sampled * p <= 3 * n_level * threshold + 8 * p
            coverage_ok = 2 * uncovered_high <= n_high
            return size_ok and coverage_ok

        seed, _, scan = distributed_scan_seeds(
            dg.sim,
            p,
            local_stats,
            stat_width=2,
            accept=accept,
            batch=batch,
            max_batches=max_batches,
        )
        return seed, scan.candidates_scanned

    return choose


def ruling_program(
    beta: int = 2,
    in_set_key: str = IN_SET,
    chooser: Optional[SamplingChooser] = None,
    luby_chooser=None,
    luby_allow_stalls: int = 0,
    endgame_degree: int = 4,
    max_iterations: Optional[int] = None,
) -> SuperstepProgram:
    """The sparsify-and-gather ruling-set engine as a phase program.

    Each main-loop iteration is an unlabelled measurement phase plus a
    routed branch: ``ruling-gather-finish`` (whole residual fits one
    machine), ``ruling-endgame-luby`` (tiny residual degree), or the
    three-phase sparsify chain (``ruling-sparsify`` →
    ``ruling-solve-level`` → ``ruling-removal-wave``).  Level adjacency
    layers register with :meth:`~repro.core.program.ProgramContext.
    push_level` and are torn down via ``release_levels`` on every exit
    path.  :func:`det_ruling_set` runs this program directly.
    """
    if beta < 2:
        raise AlgorithmError(
            "det_ruling_set needs beta >= 2; use det_luby_mis for an MIS"
        )
    choose = chooser if chooser is not None else scanning_chooser()

    def setup(ctx: ProgramContext) -> None:
        dg, sim = ctx.dg, ctx.sim
        p = modulus_for(dg.num_vertices)
        ctx.state["rs_p"] = p
        ctx.state["rs_np_mod"] = (
            numpy_or_none()
            if kernel_of(sim) == KERNEL_NUMPY and supports_modulus(p)
            else None
        )
        ctx.state["rs_budget"] = sim.config.memory_words // 2
        ctx.state["rs_limit"] = (
            max_iterations
            if max_iterations is not None
            else dg.num_vertices + 2
        )

        def ensure_sets(machine: Machine) -> None:
            if in_set_key not in machine.store:
                machine.store[in_set_key] = set()
            machine.store[ITER_MEMBERS] = set()

        sim.local(ensure_sets)

    def measure(ctx: ProgramContext):
        n_act, m_act, words = adjacency_words(ctx.dg, ADJ)
        if n_act == 0:
            return EXIT
        ctx.counters["iterations"] += 1
        ctx.state["rs_words"] = words
        return None

    def route(ctx: ProgramContext) -> None:
        # Runs under the "ruling-iteration" label: picks the arm and, on
        # the sparsify path, measures the residual degree (that reduction
        # is only paid when the residual does not fit one machine).
        if ctx.state["rs_words"] <= ctx.state["rs_budget"]:
            ctx.state["rs_route"] = "gather"
            return
        max_deg = ctx.dg.max_active_degree(ADJ)
        if max_deg <= endgame_degree:
            ctx.state["rs_route"] = "endgame"
            return
        ctx.state["rs_route"] = "sparsify"
        ctx.state["rs_max_deg"] = max_deg

    def gather_finish(ctx: ProgramContext):
        members = gather_and_greedy(ctx.dg, ADJ, ITER_MEMBERS)
        ctx.counters["gather_finishes"] += 1
        ctx.counters["members"] += members
        merge_members(ctx.sim, in_set_key, ITER_MEMBERS)
        deactivate_all(ctx.dg, ADJ)
        return EXIT

    def _residual_luby(ctx: ProgramContext) -> None:
        # Guaranteed-progress fallback: one full Luby MIS on the residual.
        sub = det_luby_mis(
            ctx.dg, adj_key=ADJ, in_set_key=ITER_MEMBERS,
            chooser=luby_chooser, allow_stalls=luby_allow_stalls,
        )
        ctx.counters["endgame_luby"] += 1
        ctx.counters["seed_candidates"] += sub["seed_candidates"]
        ctx.counters["members"] += merge_members(
            ctx.sim, in_set_key, ITER_MEMBERS
        )

    def endgame(ctx: ProgramContext):
        _residual_luby(ctx)
        return EXIT

    def sparsify(ctx: ProgramContext) -> None:
        dg, sim = ctx.dg, ctx.sim
        p = ctx.state["rs_p"]
        np_mod = ctx.state["rs_np_mod"]
        budget = ctx.state["rs_budget"]
        prev_key = ADJ
        level_degree = ctx.state.pop("rs_max_deg")
        for level in range(1, beta):
            rate_num, rate_den = sampling_rate(level_degree)
            threshold = threshold_for_rate(p, rate_num, rate_den)
            high_degree = -(-8 * rate_den // rate_num)  # ceil(8 / q)
            n_level = dg.count_active(prev_key)
            n_high = reduce_scalar(
                sim,
                lambda m, hk=prev_key, hd=high_degree: sum(
                    1
                    for nbrs in m.store[hk].values()
                    if len(nbrs) >= hd
                ),
                lambda a, b: a + b,
            )
            seed, scanned = choose(
                dg, p, prev_key, threshold, high_degree, n_level, n_high
            )
            ctx.counters["seed_candidates"] += scanned
            ctx.counters["levels_built"] += 1
            new_key = f"rs_level{level}_adj"
            ctx.push_level(new_key)

            def build_level(
                machine: Machine, src=prev_key, dst=new_key,
                s=seed, t=threshold,
            ) -> None:
                adj = machine.store[src]
                if np_mod is not None:
                    # Same rows, same order, same tuples — computed by
                    # array masks instead of per-entry hash calls.
                    machine.store[dst] = MachineCSR.from_adjacency(
                        adj, np_mod
                    ).sampled_subgraph(s, t)
                    return
                machine.store[dst] = {
                    v: tuple(u for u in nbrs if s.hash(u) < t)
                    for v, nbrs in adj.items()
                    if s.hash(v) < t
                }

            sim.local(build_level)
            prev_key = new_key
            n_lvl, m_lvl, lvl_words = adjacency_words(dg, prev_key)
            if n_lvl == 0 or lvl_words <= budget:
                break
            level_degree = dg.max_active_degree(prev_key)
            if level_degree <= endgame_degree:
                break
        ctx.state["rs_deep_key"] = prev_key

    def solve_level(ctx: ProgramContext):
        dg, sim = ctx.dg, ctx.sim
        prev_key = ctx.state.pop("rs_deep_key")
        n_deep, m_deep, deep_words = adjacency_words(dg, prev_key)
        if n_deep == 0:
            # Sampling emptied out (legal but rare): make guaranteed
            # progress with one full Luby MIS on the residual graph.
            _residual_luby(ctx)
            ctx.release_levels()
            return EXIT
        if deep_words <= ctx.state["rs_budget"]:
            members = gather_and_greedy(dg, prev_key, ITER_MEMBERS)
            ctx.counters["level_gathers"] += 1
        else:
            sub = det_luby_mis(
                dg, adj_key=prev_key, in_set_key=ITER_MEMBERS,
                chooser=luby_chooser, allow_stalls=luby_allow_stalls,
            )
            ctx.counters["level_luby_solves"] += 1
            ctx.counters["seed_candidates"] += sub["seed_candidates"]
            members = reduce_scalar(
                sim, lambda m: len(m.store[ITER_MEMBERS]), lambda a, b: a + b
            )
        if members == 0:
            raise AlgorithmError(
                "level solver produced no members from a non-empty level"
            )
        ctx.counters["members"] += members
        return None

    def remove(ctx: ProgramContext) -> None:
        removal_wave(ctx.dg, ITER_MEMBERS, beta)
        merge_members(ctx.sim, in_set_key, ITER_MEMBERS)
        ctx.release_levels()

    return SuperstepProgram(
        name="sparsify-gather",
        counters=(
            "iterations",
            "levels_built",
            "seed_candidates",
            "gather_finishes",
            "level_gathers",
            "level_luby_solves",
            "endgame_luby",
            "members",
        ),
        steps=(
            Phase(setup, keys=(in_set_key, ITER_MEMBERS)),
            Loop(
                steps=(
                    Phase(measure),
                    Phase(route, name="ruling-iteration"),
                    Branch(
                        pick=lambda ctx: ctx.state.pop("rs_route"),
                        arms={
                            "gather": (
                                Phase(
                                    gather_finish,
                                    name="ruling-gather-finish",
                                ),
                            ),
                            "endgame": (
                                Phase(endgame, name="ruling-endgame-luby"),
                            ),
                            "sparsify": (
                                Phase(sparsify, name="ruling-sparsify"),
                                Phase(
                                    solve_level,
                                    name="ruling-solve-level",
                                ),
                                Phase(
                                    remove,
                                    name="ruling-removal-wave",
                                ),
                            ),
                        },
                    ),
                ),
                limit=lambda ctx: ctx.state["rs_limit"],
                exhausted=lambda ctx: AlgorithmError(
                    "ruling set did not finish in "
                    f"{ctx.state['rs_limit']} iterations"
                ),
            ),
        ),
    )


def det_ruling_set(
    dg: DistributedGraph,
    beta: int = 2,
    in_set_key: str = IN_SET,
    chooser: Optional[SamplingChooser] = None,
    luby_chooser=None,
    luby_allow_stalls: int = 0,
    endgame_degree: int = 4,
    max_iterations: Optional[int] = None,
) -> Dict[str, int]:
    """Compute a ``(2, β)``-ruling set of the active graph; β >= 2.

    Members accumulate per machine under ``store[in_set_key]``; collect
    with ``dg.collect_marked(in_set_key)``.  Returns a counter dict
    (iterations, sparsify levels, seed candidates, solver choices).

    ``chooser`` selects sampling seeds (default: the deterministic
    batched scan); ``luby_chooser`` is forwarded to the Luby engine when
    it is used as the level solver or endgame (default: deterministic
    conditional expectations).

    This is a thin wrapper over :func:`ruling_program`.
    """
    program = ruling_program(
        beta=beta,
        in_set_key=in_set_key,
        chooser=chooser,
        luby_chooser=luby_chooser,
        luby_allow_stalls=luby_allow_stalls,
        endgame_degree=endgame_degree,
        max_iterations=max_iterations,
    )
    return program.run(ProgramContext(dg))
