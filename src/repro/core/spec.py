"""Problem and result types for solver computations.

An ``(α, β)``-ruling set of ``G``:

* **α-independence** — distinct members are at graph distance ≥ α
  (α = 2 is plain independence; all algorithms here produce α = 2);
* **β-domination** — every vertex is within distance β of a member.

An MIS is a (2, 1)-ruling set; "β-ruling set" abbreviates (2, β).
Maximal matching (an MIS on the line graph) gets the matching-shaped
result type with the same shared MPC-run tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # import kept type-only: spec stays simulator-agnostic
    from repro.mpc.trace import TraceRecorder


@dataclass(frozen=True)
class RulingSetResult:
    """The outcome of one ruling-set computation.

    Attributes
    ----------
    members:
        Sorted member vertex ids.
    alpha / beta:
        The guarantee the algorithm *claims* (verification measures the
        actual values; ``measured_beta <= beta`` must hold).
    algorithm:
        Human-readable algorithm label.
    rounds:
        MPC rounds consumed (0 for sequential oracles).
    metrics:
        Flat metric dict from :class:`repro.mpc.RunMetrics.summary`, plus
        algorithm-specific counters (phases, seeds scanned, ...).  Model
        quantities only — identical runs compare equal on this dict.
    phase_rounds:
        Rounds attributed to each named phase.
    wall_time_s / time_per_phase:
        Wall-clock spent in the simulator, total and per phase — kept
        out of ``metrics`` precisely because timing varies between
        identical runs.  Measures the simulator, not a cluster.
    trace:
        The run's :class:`~repro.mpc.trace.TraceRecorder` when tracing
        was enabled, else ``None``.  Excluded from equality for the
        same reason timing is kept out of ``metrics``: the trace holds
        wall clock, and identical runs must compare equal.
    """

    members: List[int]
    alpha: int
    beta: int
    algorithm: str
    rounds: int = 0
    metrics: Dict[str, int] = field(default_factory=dict)
    phase_rounds: Dict[str, int] = field(default_factory=dict)
    wall_time_s: float = 0.0
    time_per_phase: Dict[str, float] = field(default_factory=dict)
    trace: Optional["TraceRecorder"] = field(
        default=None, compare=False, repr=False
    )

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.members)

    def summary_row(self) -> Dict[str, object]:
        """Flat row for benchmark tables."""
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "size": self.size,
            "alpha": self.alpha,
            "beta": self.beta,
            "rounds": self.rounds,
        }
        row.update(self.metrics)
        row["wall_time_s"] = round(self.wall_time_s, 6)
        return row


@dataclass(frozen=True)
class MatchingResult:
    """The outcome of one maximal-matching computation.

    Shares the MPC-run tail (``rounds`` / ``metrics`` / ``phase_rounds``
    / timing / ``trace``) with :class:`RulingSetResult` — both are
    assembled from the same
    :class:`~repro.core.session.SessionStats`, with identical
    determinism contracts (model quantities compare, wall clock and
    trace do not).

    Iterating yields ``(matching, metrics)``, so the historical
    ``matching, metrics = solve_matching(graph)`` unpacking keeps
    working unchanged.
    """

    matching: List[Tuple[int, int]]
    algorithm: str
    rounds: int = 0
    metrics: Dict[str, int] = field(default_factory=dict)
    phase_rounds: Dict[str, int] = field(default_factory=dict)
    wall_time_s: float = 0.0
    time_per_phase: Dict[str, float] = field(default_factory=dict)
    trace: Optional["TraceRecorder"] = field(
        default=None, compare=False, repr=False
    )

    @property
    def size(self) -> int:
        """Number of matched edges."""
        return len(self.matching)

    def __iter__(self) -> Iterator[object]:
        yield self.matching
        yield self.metrics

    def summary_row(self) -> Dict[str, object]:
        """Flat row for benchmark tables."""
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "size": self.size,
            "rounds": self.rounds,
        }
        row.update(self.metrics)
        row["wall_time_s"] = round(self.wall_time_s, 6)
        return row
