"""Deterministic MIS in MPC via the derandomized Luby step.

Each *phase* derandomizes one step of Luby's Algorithm B:

1. every active vertex ``v`` learns its neighbours' degrees (one round);
2. vertex ``v`` would be *marked* when ``h(v) < T_v`` with
   ``T_v = p // (2 d(v))`` — marking probability ``≈ 1/(2 d(v))``;
3. the seed ``h = h_{a,b}`` is selected by the distributed method of
   conditional expectations against the pessimistic estimator

   ``Psi(h) = Σ_v d(v)·[v marked] − Σ_v Σ_{u ~ v, u ≻ v} d(v)·[u, v both
   marked]``

   where ``u ≻ v`` orders by ``(degree, id)``.  Pointwise
   ``Psi(h) ≤ Σ_{v ∈ C} d(v)`` for the *winner set*
   ``C = {marked v with no marked u ≻ v adjacent}`` (a marked vertex with
   a marked higher neighbour nets ≤ 0), and ``C`` is independent.
   Over the pairwise-independent family,
   ``E[Psi] ≥ Σ_v d(v)·(T_v/p)·(1 − Σ_{u≻v} T_u/p) ≥ n_act(1/4 − Δ/2p)
   ≥ n_act/8`` for ``p ≥ 4Δ`` — so the committed seed certifies
   ``Σ_{v∈C} d(v) ≥ n_act/8 > 0``: **every phase makes progress and
   removes at least n_act/8 edge endpoints, deterministically**;
4. ``C`` joins the MIS; ``N[C]`` is removed (two rounds).

Phase count is ``O(log n)`` empirically (bench E3 measures the decay);
the per-phase *guarantee* proved above is positive progress plus the
``n_act/8`` floor.  Isolated vertices join the MIS directly.

The same engine runs the **randomized** Luby baseline: pass a seed
chooser that draws ``(a, b)`` at random instead of searching — the code
path, and hence the measured difference, isolates exactly the cost of
derandomization.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.program import (
    CONTINUE,
    EXIT,
    Loop,
    Phase,
    ProgramContext,
    SuperstepProgram,
)
from repro.derand.estimator import ThresholdEstimator
from repro.derand.family import Seed
from repro.derand.seed_search import distributed_choose_seed
from repro.errors import AlgorithmError
from repro.mpc.graph_store import ADJ, DistributedGraph
from repro.mpc.machine import Machine
from repro.mpc.state_layout import (
    KERNEL_NUMPY,
    KERNEL_PYTHON,
    kernel_of,
    numpy_or_none,
    supports_modulus,
)
from repro.util.prime import next_prime

VTERMS = "luby_vterms"
PTERMS = "luby_pterms"
IN_SET = "luby_in_set"

# A seed chooser returns (seed, candidates_scanned); the deterministic
# chooser runs the distributed method of conditional expectations.
SeedChooser = Callable[["object", int], Tuple[Seed, int]]


def _luby_estimator(
    p: int, kernel: str = KERNEL_PYTHON
) -> Callable[[Machine], ThresholdEstimator]:
    """Estimator builder for the compact Luby term layout.

    Machines store vertex terms ``(v, T_v, d_v)`` and compact pair terms
    ``(v, u, T_u)`` — the pair's own threshold ``T_v`` and weight
    ``-d_v`` are recovered from the vertex-term table, saving two words
    per directed edge on the machines.
    """

    def build(machine: Machine) -> ThresholdEstimator:
        est = ThresholdEstimator(p, kernel=kernel)
        own = {}
        for v, t_v, d_v in machine.store.get(VTERMS, ()):
            est.add_vertex_term(v, t_v, d_v)
            own[v] = (t_v, d_v)
        for v, u, t_u in machine.store.get(PTERMS, ()):
            t_v, d_v = own[v]
            est.add_pair_term(v, t_v, u, t_u, -d_v)
        return est

    return build


def conditional_expectation_chooser(chunk_bits: int = 5) -> SeedChooser:
    """Seed chooser: distributed method of conditional expectations."""

    def choose(sim, p: int) -> Tuple[Seed, int]:
        seed, stats = distributed_choose_seed(
            sim,
            p,
            _luby_estimator(p, kernel=kernel_of(sim)),
            chunk_bits=chunk_bits,
        )
        return seed, stats.candidates_scanned

    return choose


def _decide_winners_numpy(np, seed: Seed, vterms, pterms) -> List[int]:
    """Winner set ``C`` via array comparisons (bit-identical to the loop).

    Marked vertices are the rows hashing below their threshold; a marked
    vertex is beaten when any compact pair term pairs it with a marked
    higher neighbour.  ``tolist()`` hands back plain Python ints, so the
    winner list entering machine stores is indistinguishable from the
    reference kernel's.
    """
    p = seed.p
    a, b = seed.a, seed.b
    vv = np.fromiter((t[0] for t in vterms), dtype=np.int64, count=len(vterms))
    vt = np.fromiter((t[1] for t in vterms), dtype=np.int64, count=len(vterms))
    marked_ids = vv[((a * vv + b) % p) < vt]
    if len(pterms):
        pv = np.fromiter(
            (t[0] for t in pterms), dtype=np.int64, count=len(pterms)
        )
        pu = np.fromiter(
            (t[1] for t in pterms), dtype=np.int64, count=len(pterms)
        )
        pt = np.fromiter(
            (t[2] for t in pterms), dtype=np.int64, count=len(pterms)
        )
        beaten = pv[(((a * pu + b) % p) < pt) & np.isin(pv, marked_ids)]
        winners = np.setdiff1d(marked_ids, beaten)
    else:
        winners = np.sort(marked_ids)
    return winners.tolist()


def modulus_for(num_vertices: int) -> int:
    """Hash-field modulus: a prime ``> 4 n`` so ``T_v = p//(2d) >= 2``."""
    return next_prime(4 * max(2, num_vertices))


def luby_program(
    adj_key: str = ADJ,
    in_set_key: str = IN_SET,
    chooser: Optional[SeedChooser] = None,
    max_phases: int = 10_000,
    allow_stalls: int = 0,
    trace: Optional[List[Tuple[int, int, int]]] = None,
) -> SuperstepProgram:
    """The (de)randomized Luby MIS engine as a phase program.

    Four phases per iteration: an unlabelled measurement step (active
    count, optional E3 trace, termination), ``luby-phase`` (isolated
    absorption + degree exchange), ``luby-seed-search`` (estimator terms
    + seed selection), and ``luby-commit`` (winner set + ``N[C]``
    removal).  :func:`det_luby_mis` runs this program directly; the
    session executes it via the registry's program factory.
    """
    choose = (
        chooser if chooser is not None else conditional_expectation_chooser()
    )

    def setup(ctx: ProgramContext) -> None:
        ctx.state["luby_p"] = modulus_for(ctx.dg.num_vertices)
        ctx.state["luby_stalls"] = 0

        def ensure_set(machine: Machine) -> None:
            if in_set_key not in machine.store:
                machine.store[in_set_key] = set()

        ctx.sim.local(ensure_set)

    def measure(ctx: ProgramContext):
        dg = ctx.dg
        active = dg.count_active(adj_key)
        if trace is not None:
            # (phase index, active vertices, active edges) — the E3 decay
            # series; the extra edge reduction is only paid when tracing.
            trace.append(
                (
                    ctx.counters["phases"],
                    active,
                    dg.count_active_edges(adj_key),
                )
            )
        if active == 0:
            return EXIT
        ctx.counters["phases"] += 1
        return None

    def mark_round(ctx: ProgramContext):
        dg, sim = ctx.dg, ctx.sim

        # --- isolated vertices join immediately -----------------------
        def absorb_isolated(machine: Machine) -> None:
            adj = machine.store[adj_key]
            isolated = sorted(v for v, nbrs in adj.items() if not nbrs)
            for v in isolated:
                machine.store[in_set_key].add(v)
                del adj[v]
            machine.store["_luby_isolated"] = len(isolated)

        sim.local(absorb_isolated)
        ctx.counters["isolated_joins"] += sum(
            sim.harvest(lambda m: m.store.pop("_luby_isolated"))
        )
        max_deg = dg.max_active_degree(adj_key)
        if max_deg == 0:
            return CONTINUE  # everything left was isolated; loop re-counts

        # --- neighbours' degrees (one round) ---------------------------
        def set_degrees(machine: Machine) -> None:
            adj = machine.store[adj_key]
            machine.store["_luby_deg"] = {
                v: len(nbrs) for v, nbrs in adj.items()
            }

        sim.local(set_degrees)
        dg.push_values("_luby_deg", out_key="_luby_nbrdeg", adj_key=adj_key)
        return None

    def seed_search(ctx: ProgramContext) -> None:
        p = ctx.state["luby_p"]

        # --- build estimator terms (local) -----------------------------
        def build_terms(machine: Machine) -> None:
            degrees = machine.store.pop("_luby_deg")
            nbrdeg = machine.store.pop("_luby_nbrdeg")
            vterms: List[Tuple[int, int, int]] = []
            pterms: List[Tuple[int, int, int]] = []
            for v, d_v in degrees.items():
                if d_v == 0:
                    continue
                t_v = p // (2 * d_v)
                vterms.append((v, t_v, d_v))
                for u, d_u in nbrdeg[v]:
                    if (d_u, u) > (d_v, v):
                        # Compact pair term: T_v and the weight -d_v are
                        # recovered from the vertex-term table.
                        pterms.append((v, u, p // (2 * d_u)))
            machine.store[VTERMS] = vterms
            machine.store[PTERMS] = pterms

        ctx.sim.local(build_terms)

        # --- select the seed -------------------------------------------
        seed, scanned = choose(ctx.sim, p)
        ctx.counters["seed_candidates"] += scanned
        ctx.state["luby_seed"] = seed

    def commit(ctx: ProgramContext) -> None:
        dg, sim = ctx.dg, ctx.sim
        p = ctx.state["luby_p"]
        seed = ctx.state.pop("luby_seed")

        np_mod = (
            numpy_or_none()
            if kernel_of(sim) == KERNEL_NUMPY and supports_modulus(p)
            else None
        )

        # --- compute the winner set C locally --------------------------
        def decide_winners(machine: Machine) -> None:
            vterms = machine.store.pop(VTERMS)
            pterms = machine.store.pop(PTERMS)
            if np_mod is not None:
                winners = _decide_winners_numpy(np_mod, seed, vterms, pterms)
            else:
                marked = {
                    v for v, t_v, _ in vterms if seed.hash(v) < t_v
                }
                beaten = set()
                for v, u, t_u in pterms:
                    if v in marked and seed.hash(u) < t_u:
                        beaten.add(v)
                winners = sorted(marked - beaten)
            machine.store[in_set_key].update(winners)
            machine.store["_luby_winners"] = winners

        sim.local(decide_winners)

        # --- remove N[C] (two rounds) -----------------------------------
        dg.push_flags("_luby_winners", "_luby_hit", adj_key=adj_key)

        def removal_set(machine: Machine) -> None:
            winners = set(machine.store.pop("_luby_winners"))
            hit = machine.store.pop("_luby_hit")
            machine.store["_luby_removed"] = winners | hit
            machine.store["_luby_progress"] = len(winners | hit)

        sim.local(removal_set)
        progress = sum(
            sim.harvest(lambda m: m.store.pop("_luby_progress"))
        )
        if progress == 0:
            ctx.state["luby_stalls"] += 1
            if ctx.state["luby_stalls"] > allow_stalls:
                raise AlgorithmError(
                    "Luby phase removed nothing beyond the tolerated "
                    "stalls — for the deterministic chooser this means "
                    "the estimator guarantee was violated (bug)"
                )
        else:
            ctx.state["luby_stalls"] = 0
        dg.deactivate("_luby_removed", adj_key=adj_key)

    return SuperstepProgram(
        name="luby",
        counters=("phases", "seed_candidates", "isolated_joins"),
        steps=(
            Phase(setup, keys=(in_set_key,)),
            Loop(
                steps=(
                    Phase(measure),
                    Phase(
                        mark_round,
                        name="luby-phase",
                        keys=("_luby_deg", "_luby_nbrdeg"),
                    ),
                    Phase(
                        seed_search,
                        name="luby-seed-search",
                        keys=(VTERMS, PTERMS),
                    ),
                    Phase(
                        commit,
                        name="luby-commit",
                        keys=("_luby_winners", "_luby_removed"),
                    ),
                ),
                limit=lambda ctx: max_phases,
                exhausted=lambda ctx: AlgorithmError(
                    f"Luby MIS did not finish in {max_phases} phases"
                ),
            ),
        ),
    )


def det_luby_mis(
    dg: DistributedGraph,
    adj_key: str = ADJ,
    in_set_key: str = IN_SET,
    chooser: Optional[SeedChooser] = None,
    max_phases: int = 10_000,
    allow_stalls: int = 0,
    trace: Optional[List[Tuple[int, int, int]]] = None,
) -> Dict[str, int]:
    """Run (de)randomized Luby MIS on the adjacency under ``adj_key``.

    MIS members accumulate per machine in ``store[in_set_key]`` (a set of
    owned member ids); collect them with ``dg.collect_marked(in_set_key)``.
    Every vertex active under ``adj_key`` at entry is removed by exit.

    ``allow_stalls`` is the number of *consecutive* zero-progress phases
    tolerated: 0 for the deterministic chooser (its estimator guarantee
    makes a stall a bug), a small positive number for randomized seed
    choosers (an unlucky draw is legal there).  Pass a list as ``trace``
    to receive ``(phase, active_vertices, active_edges)`` tuples (the E3
    decay series; tracing costs one extra reduction per phase).  Returns
    a counter dict.

    This is a thin wrapper: the whole engine lives in
    :func:`luby_program`, executed here against a fresh
    :class:`~repro.core.program.ProgramContext`.
    """
    program = luby_program(
        adj_key=adj_key,
        in_set_key=in_set_key,
        chooser=chooser,
        max_phases=max_phases,
        allow_stalls=allow_stalls,
        trace=trace,
    )
    return program.run(ProgramContext(dg))
