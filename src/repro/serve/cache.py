"""Content-addressed result cache for the serve layer.

The determinism contract is what makes caching *sound* here rather than
merely convenient: every registered algorithm is a pure function of its
semantic inputs (graph contents + the canonical parameters from
:func:`repro.core.registry.canonical_cache_params`), so a cached result
is not an approximation of a re-solve — it *is* the re-solve, bit for
bit.  The key is therefore content-addressed end to end:

* the graph contributes its CSR content digest
  (:meth:`repro.graph.graph.Graph.fingerprint`), stable across
  processes and machines — never Python's salted ``hash()``;
* the parameters contribute their canonicalized dict, so two
  parameterizations that provably produce identical results (different
  seeds for a seedless algorithm, different backends, trace on/off)
  share one entry, while anything that can move a model quantity
  (regime, β, α, an explicit machine count) gets its own.

Two tiers share that key space:

* an **in-memory LRU** bounded by entry count (``memory_entries``;
  evictions are counted, never silent);
* an optional **on-disk tier** under ``disk_dir`` — one JSON file per
  key at ``objects/<k[:2]>/<k>.json``, written atomically (tmp +
  rename), unbounded, shared between processes, and cleared only by an
  explicit :meth:`ResultCache.clear` (surfaced as ``repro-mpc cache
  clear``).  A disk hit is promoted into the memory tier.

Entries are stored as canonical JSON text in *both* tiers, so a memory
hit and a disk hit return byte-identical payloads and callers can never
mutate cached state in place.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.registry import MATCHING, RULING_SET
from repro.core.spec import MatchingResult, RulingSetResult
from repro.errors import ServeError

__all__ = [
    "ResultCache",
    "cache_key",
    "payload_to_result",
    "result_to_payload",
]


def cache_key(graph_fingerprint: str, params: Dict[str, object]) -> str:
    """The content address of one solve: sha256 over graph + parameters.

    ``params`` must already be canonical (use
    :func:`repro.core.registry.canonical_cache_params`); this function
    only fixes the serialization (sorted keys, tight separators) so the
    digest is reproducible across processes.
    """
    blob = json.dumps(
        {"graph": graph_fingerprint, "params": params},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_to_payload(
    result: Union[RulingSetResult, MatchingResult]
) -> Dict[str, object]:
    """Serialise a result dataclass to a JSON-safe payload dict.

    The payload keeps the wall-clock fields: a cache hit reconstructs
    the *original* run's result object, equal (``==``) to what the
    solve returned — the frozen dataclasses include ``wall_time_s`` in
    equality, so dropping timing here would break the bit-identity
    acceptance test.
    """
    if not isinstance(result, (RulingSetResult, MatchingResult)):
        raise ServeError(
            f"cannot cache a {type(result).__name__}; expected "
            "RulingSetResult or MatchingResult"
        )
    shared = {
        "algorithm": result.algorithm,
        "rounds": result.rounds,
        "metrics": dict(result.metrics),
        "phase_rounds": dict(result.phase_rounds),
        "wall_time_s": result.wall_time_s,
        "time_per_phase": dict(result.time_per_phase),
    }
    if isinstance(result, RulingSetResult):
        return {
            "problem": RULING_SET,
            "members": list(result.members),
            "alpha": result.alpha,
            "beta": result.beta,
            **shared,
        }
    return {
        "problem": MATCHING,
        "matching": [list(edge) for edge in result.matching],
        **shared,
    }


def payload_to_result(
    payload: Dict[str, object]
) -> Union[RulingSetResult, MatchingResult]:
    """Rebuild the result dataclass a payload was serialised from.

    The reconstruction is exact up to the ``trace`` field (a pure
    observer, excluded from dataclass equality): matching edges come
    back as tuples, timing fields are restored verbatim.
    """
    problem = payload.get("problem")
    if problem not in (RULING_SET, MATCHING):
        raise ServeError(
            f"unknown problem kind in cached payload: {problem!r}"
        )
    shared = {
        "algorithm": payload["algorithm"],
        "rounds": payload["rounds"],
        "metrics": dict(payload["metrics"]),
        "phase_rounds": dict(payload["phase_rounds"]),
        "wall_time_s": payload["wall_time_s"],
        "time_per_phase": dict(payload["time_per_phase"]),
    }
    if problem == RULING_SET:
        return RulingSetResult(
            members=list(payload["members"]),
            alpha=payload["alpha"],
            beta=payload["beta"],
            **shared,
        )
    return MatchingResult(
        matching=[tuple(edge) for edge in payload["matching"]],
        **shared,
    )


class ResultCache:
    """Two-tier content-addressed cache: in-memory LRU over optional disk.

    ``memory_entries`` bounds the LRU tier (0 disables it — useful for
    a pure disk cache); ``disk_dir`` enables the persistent tier.  All
    traffic is counted: ``hits`` / ``misses`` / ``stores`` /
    ``evictions``, with hits split by tier, surfaced through
    :meth:`stats` and folded into the batch engine's
    :class:`~repro.mpc.trace.ServiceTrace`.
    """

    def __init__(
        self,
        memory_entries: int = 256,
        disk_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if memory_entries < 0:
            raise ServeError(
                f"memory_entries must be >= 0, got {memory_entries}"
            )
        self.memory_entries = memory_entries
        self._memory: "OrderedDict[str, str]" = OrderedDict()
        self._disk: Optional[Path] = None
        if disk_dir is not None:
            self._disk = Path(disk_dir)
            try:
                (self._disk / "objects").mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise ServeError(
                    f"cache directory {self._disk} is unusable: {exc}"
                ) from exc
        self._counters: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
            "memory_hits": 0,
            "disk_hits": 0,
        }

    # -- lookup ----------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached payload for ``key``, or ``None`` on a miss."""
        text = self._memory.get(key)
        if text is not None:
            self._memory.move_to_end(key)
            self._counters["hits"] += 1
            self._counters["memory_hits"] += 1
            return json.loads(text)
        if self._disk is not None:
            path = self._object_path(key)
            if path.exists():
                text = path.read_text(encoding="utf-8")
                self._admit(key, text)  # promotion, not a store
                self._counters["hits"] += 1
                self._counters["disk_hits"] += 1
                return json.loads(text)
        self._counters["misses"] += 1
        return None

    def put(self, key: str, payload: Dict[str, object]) -> None:
        """Store ``payload`` under ``key`` in every enabled tier."""
        text = json.dumps(payload, sort_keys=True)
        self._counters["stores"] += 1
        self._admit(key, text)
        if self._disk is not None:
            path = self._object_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(text, encoding="utf-8")
            tmp.replace(path)  # atomic: readers never see a torn entry

    def _admit(self, key: str, text: str) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = text
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self._counters["evictions"] += 1

    def _object_path(self, key: str) -> Path:
        # Content-addressed layout: fan out on the first byte so one
        # directory never accumulates every object.
        return self._disk / "objects" / key[:2] / f"{key}.json"

    # -- maintenance -----------------------------------------------------

    def _disk_objects(self):
        """Snapshot the disk tier's object paths, tolerating races.

        A concurrent ``cache clear`` or eviction may remove files (or the
        whole tree) between the ``rglob`` walk and our use of each path;
        a vanished tree is simply an empty listing.
        """
        if self._disk is None:
            return []
        try:
            return sorted((self._disk / "objects").rglob("*.json"))
        except OSError:
            return []

    def clear(self) -> int:
        """Drop both tiers; returns the number of disk entries removed.

        Entries deleted concurrently by another process are skipped, not
        raised: two racing ``clear`` calls both succeed, and the counts
        they return sum over at least every entry that existed.
        """
        self._memory.clear()
        removed = 0
        for path in self._disk_objects():
            try:
                path.unlink()
            except FileNotFoundError:
                continue  # lost the race to a concurrent clear/eviction
            removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        """Traffic counters plus current entry counts per tier."""
        stats = dict(self._counters)
        stats["memory_entries"] = len(self._memory)
        stats["disk_entries"] = self.disk_entries()
        stats["disk_bytes"] = self.disk_bytes()
        return stats

    def disk_entries(self) -> int:
        """Number of objects in the disk tier (0 when disabled)."""
        return len(self._disk_objects())

    def disk_bytes(self) -> int:
        """Total size of the disk tier in bytes (0 when disabled).

        Entries vanishing under a concurrent clear contribute zero
        instead of raising ``FileNotFoundError`` mid-sum.
        """
        total = 0
        for path in self._disk_objects():
            try:
                total += path.stat().st_size
            except FileNotFoundError:
                continue
        return total
