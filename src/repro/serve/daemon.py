"""Persistent async solve service: ``repro-mpc serve``.

The batch engine (:mod:`repro.serve.engine`) answers one JSONL file and
exits — every client pays cold start, and a burst of clients has no
queueing, fairness, or backpressure story.  ``ServeDaemon`` promotes it
to a long-lived front end:

* **Transport.**  Newline-delimited JSON over a local unix socket (or
  stdio for subprocess embedding).  One request per line in, one
  response record per line out; responses carry the request's ``id``,
  so clients may pipeline.
* **Admission control.**  A bounded request queue
  (:class:`AdmissionPolicy`).  Once queue depth reaches ``max_queue``
  — or the estimated words of admitted-but-unfinished work would
  exceed ``max_inflight_words`` — new requests are *refused
  immediately* with a structured ``status: "refused"`` record naming
  the limit hit.  Refusal is always explicit: the daemon never drops a
  request silently.
* **Fairness.**  Requests queue per tenant (the optional ``tenant``
  field, stripped before the engine sees the request); a round-robin
  ring serves one request per tenant per turn, so a tenant flooding
  the queue cannot starve the others — pinned by test.
* **Warm pools.**  All requests share one :class:`BatchEngine`: its
  graph pool, :class:`~repro.core.session.SessionFactory`, and
  :class:`~repro.serve.cache.ResultCache` stay warm across requests,
  and the cache is the first hop before any solve runs.
* **Latency attribution.**  Every served request records queue /
  execute / total wall clock into the engine's
  :class:`~repro.mpc.trace.ServiceTrace` latency side channel, so the
  E15 gate can watch p50/p95/p99 like it watches model quantities.

Determinism contract: a served record's deterministic part is
byte-identical to the same request through ``repro-mpc batch`` — both
paths resolve through the same cache key and runner (see
``BatchEngine.serve_request``); the daemon only adds queueing around
it.  Everything the daemon itself invents (tenant, queue depth at
refusal, latency) lives in the ``_serve`` side channel or the trace's
latency records, outside the deterministic stream.

Control operations ride the same line protocol as JSON objects with an
``op`` field: ``{"op": "ping"}``, ``{"op": "stats"}``, and
``{"op": "shutdown"}`` (drain the queue, answer in-flight work, exit).
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ServeError
from repro.mpc.config import MPCConfig
from repro.mpc.governor import PeakHold
from repro.serve.engine import BatchEngine

__all__ = [
    "AdmissionPolicy",
    "ServeDaemon",
    "drive_requests",
    "estimate_request_words",
    "replay_requests",
]

#: Tenant bucket for requests that do not name one.
DEFAULT_TENANT = "default"


def _estimate_edges(family: str, n: int, param: int) -> int:
    """Expected edge count of a generator spec (admission estimate)."""
    if family == "gnp" or family == "regular":
        return max(1, n * max(1, param) // 2)
    if family in ("tree", "star"):
        return max(1, n - 1)
    if family == "cycle":
        return n
    if family == "grid":
        return 2 * n
    if family == "rmat":
        return max(1, param) * n
    if family == "powerlaw":
        return 2 * n
    if family == "barbell":
        half = max(2, n // 2)
        return half * (half - 1) + max(0, param)
    return 2 * n  # unknown family: assume sparse


def estimate_request_words(data: Dict[str, Any]) -> int:
    """Estimated input words of one request, for admission control.

    Edge-list sources are priced from the file's ``n m`` header (one
    ``readline``, never a full read); generator specs from the
    family's expected edge count — both through the same
    :meth:`~repro.mpc.config.MPCConfig.input_words` model the budget
    checks use.  Anything unpriceable returns 0: admission control
    sheds load, it does not pre-validate — a malformed request is
    refused with a real error by the engine, not a guess here.  The
    daemon substitutes its conservative price for the zero (see
    :attr:`AdmissionPolicy.default_request_words`), so unpriceable
    requests no longer bypass ``max_inflight_words`` entirely.
    """
    source = data.get("graph")
    if not isinstance(source, dict):
        return 0
    if "input" in source:
        try:
            with open(str(source["input"]), encoding="utf-8") as handle:
                header = handle.readline().split()
            n, m = int(header[0]), int(header[1])
        except (OSError, ValueError, IndexError):
            return 0
        return MPCConfig.input_words(n, m)
    try:
        family = str(source.get("family", ""))
        n = int(source.get("n", 200))
        param = int(source.get("param", 12))
    except (TypeError, ValueError):
        return 0
    if n <= 0:
        return 0
    return MPCConfig.input_words(n, _estimate_edges(family, n, param))


@dataclass(frozen=True)
class AdmissionPolicy:
    """The daemon's load-shedding contract.

    ``max_queue`` bounds admitted-but-unfinished requests (queued plus
    executing); ``max_inflight_words`` additionally bounds their
    summed :func:`estimate_request_words` (0 = unbounded).  Both are
    checked at admission; a request holds its slot and words until its
    response is ready, so the bounds cover work in flight, not just
    work waiting.

    ``default_request_words`` closes the unpriceable-request loophole:
    a request :func:`estimate_request_words` cannot price used to count
    zero words against ``max_inflight_words`` — i.e. bypass the inflight
    cap entirely.  When positive, unpriceable requests are charged
    ``max(default_request_words, peak priced estimate seen so far)`` —
    the peak-hold governor's conservative guess (an unknown request is
    assumed as heavy as the heaviest known one).  0 keeps the legacy
    admit-at-zero behaviour.
    """

    max_queue: int = 64
    max_inflight_words: int = 0
    default_request_words: int = 0

    def __post_init__(self) -> None:
        if self.max_queue <= 0:
            raise ServeError(
                f"max_queue must be positive, got {self.max_queue}"
            )
        if self.max_inflight_words < 0:
            raise ServeError(
                "max_inflight_words must be >= 0 (0 = unbounded), "
                f"got {self.max_inflight_words}"
            )
        if self.default_request_words < 0:
            raise ServeError(
                "default_request_words must be >= 0 (0 = legacy "
                f"admit-at-zero), got {self.default_request_words}"
            )


class _Pending:
    """One admitted request waiting for (or in) execution."""

    __slots__ = (
        "data", "tenant", "index", "est_words", "future", "enqueued_at"
    )

    def __init__(
        self,
        data: Dict[str, Any],
        tenant: str,
        index: int,
        est_words: int,
        future: "asyncio.Future[Dict[str, Any]]",
        enqueued_at: float,
    ) -> None:
        self.data = data
        self.tenant = tenant
        self.index = index
        self.est_words = est_words
        self.future = future
        self.enqueued_at = enqueued_at


class ServeDaemon:
    """Asyncio front end over one warm :class:`BatchEngine`.

    Single-threaded control plane: queues, the tenant ring, and the
    admission counters are only touched from the event loop, so they
    need no locks.  Solves run on ``workers`` executor threads through
    ``BatchEngine.serve_request``, which locks its own shared state.
    """

    def __init__(
        self,
        engine: BatchEngine,
        *,
        policy: Optional[AdmissionPolicy] = None,
        workers: int = 1,
    ) -> None:
        if workers <= 0:
            raise ServeError(f"workers must be positive, got {workers}")
        self.engine = engine
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.workers = workers
        self._queues: Dict[str, Deque[_Pending]] = {}
        self._ring: Deque[str] = deque()
        self._depth = 0
        self._inflight_words = 0
        self._index = 0
        self._served = 0
        self._refused = 0
        # Peak-hold of priced estimates: prices unpriceable requests
        # when the policy opts in via default_request_words.
        self._load_peak = PeakHold()
        self._unpriceable_priced = 0
        self._wake = asyncio.Event()
        self._shutdown = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._conn_tasks: Set["asyncio.Task[None]"] = set()

    # -- admission -------------------------------------------------------

    def _refusal(
        self,
        data: Dict[str, Any],
        tenant: str,
        reason: str,
        est_words: int,
    ) -> Dict[str, Any]:
        """A structured refusal record (never a silent drop)."""
        self._refused += 1
        rid = str(data.get("id", f"req-{self._index}"))
        self.engine.trace.record(
            "refused", id=rid, tenant=tenant, reason=reason
        )
        return {
            "id": rid,
            "status": "refused",
            "error_type": ServeError.__name__,
            "error": reason,
            "_serve": {
                "tenant": tenant,
                "queue_depth": self._depth,
                "inflight_words": self._inflight_words,
                "est_words": est_words,
            },
        }

    def admit(
        self, data: Dict[str, Any], *, tenant: str = DEFAULT_TENANT
    ) -> "Tuple[Optional[Dict[str, Any]], Optional[asyncio.Future]]":
        """Admission decision: ``(refusal record, None)`` or
        ``(None, future resolving to the response record)``.

        Synchronous on purpose: a connection handler admits each
        request *in arrival order* before reading the next line, so a
        later control op (e.g. ``shutdown``) can never leapfrog
        requests that were already on the wire ahead of it.
        """
        est_words = estimate_request_words(data)
        policy = self.policy
        if est_words > 0:
            self._load_peak.observe(est_words)
        elif policy.default_request_words > 0:
            # Unpriceable: charge the conservative default, lifted to
            # the heaviest priced estimate seen (peak-hold governor) —
            # never a free pass through max_inflight_words.
            est_words = max(
                policy.default_request_words, self._load_peak.peak
            )
            self._unpriceable_priced += 1
        if self._shutdown.is_set():
            return (
                self._refusal(
                    data, tenant, "daemon is shutting down", est_words
                ),
                None,
            )
        if self._depth >= policy.max_queue:
            return (
                self._refusal(
                    data,
                    tenant,
                    f"queue depth {self._depth} is at "
                    f"max_queue={policy.max_queue}; retry later",
                    est_words,
                ),
                None,
            )
        if (
            policy.max_inflight_words
            and self._inflight_words + est_words > policy.max_inflight_words
        ):
            return (
                self._refusal(
                    data,
                    tenant,
                    f"estimated {est_words} words would lift in-flight "
                    f"total {self._inflight_words} over "
                    f"max_inflight_words={policy.max_inflight_words}; "
                    "retry later",
                    est_words,
                ),
                None,
            )
        loop = asyncio.get_running_loop()
        pending = _Pending(
            data=data,
            tenant=tenant,
            index=self._index,
            est_words=est_words,
            future=loop.create_future(),
            enqueued_at=time.monotonic(),
        )
        self._index += 1
        self._depth += 1
        self._inflight_words += est_words
        queue = self._queues.setdefault(tenant, deque())
        if not queue and tenant not in self._ring:
            self._ring.append(tenant)
        queue.append(pending)
        self._wake.set()
        return None, pending.future

    async def submit(
        self, data: Dict[str, Any], *, tenant: str = DEFAULT_TENANT
    ) -> Dict[str, Any]:
        """Admit one request and await its response record.

        Returns a refusal record *immediately* (without enqueueing)
        when admission control rejects it or the daemon is shutting
        down; otherwise blocks until a worker has served the request.
        """
        refusal, future = self.admit(data, tenant=tenant)
        if refusal is not None:
            return refusal
        assert future is not None
        return await future

    # -- the worker pool -------------------------------------------------

    def _next_pending(self) -> Optional[_Pending]:
        """Pop the next request, round-robin across tenants."""
        while self._ring:
            tenant = self._ring.popleft()
            queue = self._queues.get(tenant)
            if not queue:
                continue
            pending = queue.popleft()
            if queue:
                self._ring.append(tenant)
            return pending
        return None

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            self._wake.clear()
            pending = self._next_pending()
            if pending is None:
                if self._shutdown.is_set():
                    return
                await self._wake.wait()
                continue
            started = time.monotonic()
            try:
                record = await loop.run_in_executor(
                    self._executor,
                    partial(
                        self.engine.serve_request,
                        pending.data,
                        index=pending.index,
                    ),
                )
            except ServeError as exc:
                record = {
                    "id": str(
                        pending.data.get("id", f"req-{pending.index}")
                    ),
                    "status": "invalid",
                    "error_type": type(exc).__name__,
                    "error": str(exc),
                    "_serve": {},
                }
            except Exception as exc:  # worker must survive anything
                record = {
                    "id": str(
                        pending.data.get("id", f"req-{pending.index}")
                    ),
                    "status": "failed",
                    "error_type": type(exc).__name__,
                    "error": str(exc),
                    "_serve": {},
                }
            finished = time.monotonic()
            self._depth -= 1
            self._inflight_words -= pending.est_words
            self._served += 1
            serve = record.setdefault("_serve", {})
            if isinstance(serve, dict):
                serve["tenant"] = pending.tenant
            self.engine.trace.record_latency(
                id=record.get("id"),
                outcome=str(record.get("status", "ok")),
                queue_s=started - pending.enqueued_at,
                execute_s=finished - started,
                total_s=finished - pending.enqueued_at,
                tenant=pending.tenant,
            )
            if not pending.future.done():
                pending.future.set_result(record)

    # -- control plane ---------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A point-in-time snapshot of load and service counters."""
        return {
            "queue_depth": self._depth,
            "inflight_words": self._inflight_words,
            "served": self._served,
            "refused": self._refused,
            "tenants": sorted(
                tenant
                for tenant, queue in self._queues.items()
                if queue
            ),
            "max_queue": self.policy.max_queue,
            "max_inflight_words": self.policy.max_inflight_words,
            "default_request_words": self.policy.default_request_words,
            "peak_request_words": self._load_peak.peak,
            "unpriceable_priced": self._unpriceable_priced,
            "workers": self.workers,
            "counters": dict(sorted(self.engine.trace.counters.items())),
            "latency": self.engine.trace.latency_summary(),
        }

    def request_stop(self) -> None:
        """Begin shutdown: refuse new work, drain what was admitted."""
        self._shutdown.set()
        self._wake.set()

    def _control(self, op: str) -> Dict[str, Any]:
        if op == "ping":
            return {"op": "ping", "status": "ok"}
        if op == "stats":
            return {"op": "stats", "status": "ok", "stats": self.stats()}
        if op == "shutdown":
            return {"op": "shutdown", "status": "ok"}
        return {
            "op": op,
            "status": "invalid",
            "error_type": ServeError.__name__,
            "error": f"unknown control op {op!r}; "
            "expected ping, stats, or shutdown",
        }

    # -- line protocol ---------------------------------------------------

    @staticmethod
    def _parse_line(line: bytes) -> Any:
        """One wire line → ``(request, None)`` or ``(None, error record)``."""
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            return None, {
                "status": "invalid",
                "error_type": ServeError.__name__,
                "error": f"request is not valid JSON: {exc}",
            }
        if not isinstance(data, dict):
            return None, {
                "status": "invalid",
                "error_type": ServeError.__name__,
                "error": "request must be a JSON object, "
                f"got {type(data).__name__}",
            }
        return data, None

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        inflight: Set["asyncio.Task[None]"] = set()

        async def respond(record: Dict[str, Any]) -> None:
            payload = json.dumps(record, sort_keys=True).encode() + b"\n"
            async with write_lock:
                writer.write(payload)
                await writer.drain()

        async def respond_when_done(
            future: "asyncio.Future[Dict[str, Any]]",
        ) -> None:
            await respond(await future)

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                data, parse_error = self._parse_line(line)
                if parse_error is not None:
                    await respond(parse_error)
                    continue
                op = data.get("op")
                if op is not None:
                    await respond(self._control(str(op)))
                    if op == "shutdown":
                        self.request_stop()
                        break
                    continue
                tenant = str(data.pop("tenant", DEFAULT_TENANT))
                # Admit in arrival order (synchronously), then respond
                # out of order as solves finish: responses carry ids,
                # so clients may pipeline.
                refusal, future = self.admit(data, tenant=tenant)
                if refusal is not None:
                    await respond(refusal)
                    continue
                job = asyncio.create_task(respond_when_done(future))
                inflight.add(job)
                job.add_done_callback(inflight.discard)
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    # -- entry points ----------------------------------------------------

    async def serve_unix(self, socket_path: str) -> None:
        """Serve on a unix socket until a shutdown op (or stop) arrives."""
        workers = [
            asyncio.create_task(self._worker())
            for _ in range(self.workers)
        ]
        server = await asyncio.start_unix_server(
            self._handle_connection, path=socket_path
        )
        try:
            await self._shutdown.wait()
        finally:
            self.request_stop()
            server.close()
            await server.wait_closed()
            await asyncio.gather(*workers)
            # Give active handlers a moment to flush their final
            # responses, then cancel connections idling in readline.
            if self._conn_tasks:
                _, stragglers = await asyncio.wait(
                    set(self._conn_tasks), timeout=5.0
                )
                for straggler in stragglers:
                    straggler.cancel()
                if stragglers:
                    await asyncio.gather(
                        *stragglers, return_exceptions=True
                    )
            self._executor.shutdown(wait=True)

    async def serve_stdio(self) -> None:
        """Serve newline-delimited JSON on stdin/stdout until EOF."""
        workers = [
            asyncio.create_task(self._worker())
            for _ in range(self.workers)
        ]
        loop = asyncio.get_running_loop()
        inflight: Set["asyncio.Task[None]"] = set()
        write_lock = asyncio.Lock()

        async def respond(record: Dict[str, Any]) -> None:
            payload = json.dumps(record, sort_keys=True)
            async with write_lock:
                print(payload, flush=True)

        async def respond_when_done(
            future: "asyncio.Future[Dict[str, Any]]",
        ) -> None:
            await respond(await future)

        try:
            while not self._shutdown.is_set():
                raw = await loop.run_in_executor(None, sys.stdin.readline)
                if not raw:
                    break  # EOF: drain and exit
                stripped = raw.strip()
                if not stripped:
                    continue
                data, parse_error = self._parse_line(stripped.encode())
                if parse_error is not None:
                    await respond(parse_error)
                    continue
                op = data.get("op")
                if op is not None:
                    await respond(self._control(str(op)))
                    if op == "shutdown":
                        break
                    continue
                tenant = str(data.pop("tenant", DEFAULT_TENANT))
                refusal, future = self.admit(data, tenant=tenant)
                if refusal is not None:
                    await respond(refusal)
                    continue
                job = asyncio.create_task(respond_when_done(future))
                inflight.add(job)
                job.add_done_callback(inflight.discard)
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
        finally:
            self.request_stop()
            await asyncio.gather(*workers)
            self._executor.shutdown(wait=True)


async def replay_requests(
    daemon: ServeDaemon,
    requests: List[Dict[str, Any]],
    *,
    concurrency: int = 1,
) -> List[Dict[str, Any]]:
    """Replay a request list through a daemon; responses in input order.

    The in-process traffic driver the load generator and the smoke
    check share: ``concurrency=1`` awaits each response before the
    next submit (deterministic admission — nothing is ever refused by
    a bound the replay itself saturated), larger values keep that many
    submits in flight, exercising queueing and admission like real
    concurrent clients.  Tenants come from each request's ``tenant``
    field, exactly like the wire protocol.
    """
    if concurrency <= 0:
        raise ServeError(
            f"concurrency must be positive, got {concurrency}"
        )
    results: List[Optional[Dict[str, Any]]] = [None] * len(requests)
    gate = asyncio.Semaphore(concurrency)

    async def one(index: int, data: Dict[str, Any]) -> None:
        payload = dict(data)
        tenant = str(payload.pop("tenant", DEFAULT_TENANT))
        async with gate:
            results[index] = await daemon.submit(payload, tenant=tenant)

    await asyncio.gather(
        *(one(index, data) for index, data in enumerate(requests))
    )
    return [record for record in results if record is not None]


async def drive_requests(
    daemon: ServeDaemon,
    requests: List[Dict[str, Any]],
    *,
    concurrency: int = 1,
) -> List[Dict[str, Any]]:
    """One-shot replay: run the daemon's worker pool for its duration.

    :func:`replay_requests` assumes workers are already running (the
    transports spawn them); this wrapper owns the whole lifecycle —
    spawn the pool, replay, drain, stop — so in-process drivers (the
    E15 load generator, the serve smoke check) get daemon semantics
    without a socket.  The daemon is spent afterwards: its executor is
    shut down and new submissions are refused.
    """
    workers = [
        asyncio.create_task(daemon._worker())
        for _ in range(daemon.workers)
    ]
    try:
        return await replay_requests(
            daemon, requests, concurrency=concurrency
        )
    finally:
        daemon.request_stop()
        await asyncio.gather(*workers)
        daemon._executor.shutdown(wait=True)
