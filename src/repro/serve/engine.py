"""Batched request engine: JSONL requests in, JSONL records out.

One request names a graph source, an algorithm, and solve parameters;
the engine turns a batch of them into verified results while doing the
work at most once per *distinct* solve:

1. **Grouping.**  Distinct graph sources are loaded exactly once and
   shared by every request that names them (requests are grouped by the
   graph's content fingerprint, so two spellings of the same source
   still share one load).
2. **Dedup.**  Each request's cache key
   (:func:`repro.serve.cache.cache_key` over the graph fingerprint and
   the registry's canonical parameters) identifies its solve; within a
   batch, only the first request per key executes — the rest are
   *deduplicated* onto its outcome, failures included.
3. **Cache.**  Keys are looked up in the :class:`ResultCache` before
   anything runs; a hit is served from the stored payload with **zero
   MPC rounds executed**, and every executed miss is stored back.
4. **Execution.**  The unique misses run through the sweep engine's
   :func:`~repro.analysis.sweep.run_cells` scheduler — the same bounded
   fan-out (``jobs``), per-request ``timeout``, ``retries``, and
   process isolation the fault-tolerant sweeps use.  A request that
   fails becomes a structured failure record in the output stream;
   it never kills the batch and is never cached.
5. **Backpressure.**  Batches above ``max_requests`` are refused up
   front with :class:`~repro.errors.ServeError` instead of being
   queued unboundedly.

Output records preserve input order.  Each record's deterministic part
(members/matching, rounds, metrics, phase attribution) is
record-for-record identical between serial and parallel engine runs and
between cold and warm cache states; per-serving observability (cache
status, wall clock, worker attribution) rides in a ``_serve`` side
channel excluded from that contract — the exact split the sweep
checkpoints use for ``_meta``.

Request schema (one JSON object per line)::

    {"id": "r1", "graph": {"family": "gnp", "n": 128, "param": 8},
     "algorithm": "...", "beta": 2, "alpha": 2,
     "regime": "sublinear", "alpha_mem": [2, 3], "seed": 0}

``graph`` is either ``{"input": "edges.txt"}`` (an edge-list file) or a
generator spec ``{"family": ..., "n": ..., "param": ..., "seed": ...}``
with the same semantics as the CLI's graph options.  Every field but
``graph`` has a default; ``id`` defaults to the request's position.
"""

from __future__ import annotations

import json
import os
import threading
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.records import RunRecord
from repro.analysis.sweep import FAILED, Cell, run_cells
from repro.core import registry
from repro.core.session import SessionFactory
from repro.errors import ReproError, ServeError
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list
from repro.mpc.trace import ServiceTrace
from repro.serve.cache import ResultCache, cache_key, result_to_payload

__all__ = [
    "BatchEngine",
    "read_requests",
    "records_to_lines",
    "write_records",
]

#: The request fields the engine understands; anything else is a
#: malformed request file (raised, not recorded — see ServeError).
_REQUEST_KEYS = frozenset(
    ("id", "graph", "algorithm", "beta", "alpha", "regime", "alpha_mem",
     "seed")
)

#: Payload keys that carry wall clock — serving observability, excluded
#: from the deterministic record part (they land under ``_serve``).
_TIMING_KEYS = ("wall_time_s", "time_per_phase")


def read_requests(
    path: Union[str, Path], *, with_linenos: bool = False
) -> Union[
    List[Dict[str, object]],
    Tuple[List[Dict[str, object]], List[int]],
]:
    """Parse a JSONL request file; malformed lines raise ServeError.

    The file is streamed line by line — a large batch file never has to
    fit in memory as one string (the parsed requests themselves still
    accumulate; the serve daemon avoids even that by reading its socket
    stream one request at a time).  With ``with_linenos=True`` the
    1-based line number of each request is returned alongside, so
    errors detected later (e.g. duplicate ids) can name file positions.
    """
    requests: List[Dict[str, object]] = []
    linenos: List[int] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ServeError(
                    f"{path}:{lineno}: request is not valid JSON: {exc}"
                ) from exc
            if not isinstance(data, dict):
                raise ServeError(
                    f"{path}:{lineno}: request must be a JSON object, "
                    f"got {type(data).__name__}"
                )
            requests.append(data)
            linenos.append(lineno)
    if with_linenos:
        return requests, linenos
    return requests


def records_to_lines(records: List[Dict[str, object]]) -> List[str]:
    """Serialise output records as canonical JSON lines."""
    return [json.dumps(record, sort_keys=True) for record in records]


def write_records(
    records: List[Dict[str, object]], path: Union[str, Path]
) -> None:
    """Write output records to a JSONL file, atomically.

    Same tmp-write-then-:func:`os.replace` pattern as the result
    cache's disk tier: a crash mid-write leaves either the previous
    file or the complete new one, never a torn half-batch.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(
        "\n".join(records_to_lines(records)) + "\n", encoding="utf-8"
    )
    os.replace(tmp, target)


def _load_graph(source: Dict[str, object]) -> Graph:
    """Materialise one graph source (edge-list file or generator spec)."""
    if "input" in source:
        return read_edge_list(str(source["input"]))
    from repro.cli import build_graph  # lazy: the CLI imports serve back

    return build_graph(
        str(source["family"]),
        int(source.get("n", 200)),
        int(source.get("param", 12)),
        int(source.get("seed", 0)),
    )


def _execute_request(
    graph: Graph,
    params: Dict[str, object],
    factory: Optional[SessionFactory] = None,
) -> RunRecord:
    """Cell runner: one verified solve, payload in the record fields.

    Module-level so it pickles for ``jobs > 1`` / ``timeout`` runs; the
    warm ``factory`` is bound (via :func:`functools.partial`) only for
    in-process execution, where reusing per-graph artifacts pays off.
    """
    spec = registry.get_algorithm(str(params["algorithm"]))
    if spec.problem == registry.RULING_SET:
        from repro.core.pipeline import solve_ruling_set

        result = solve_ruling_set(
            graph,
            algorithm=spec.name,
            beta=int(params["beta"]),
            alpha=int(params["alpha"]),
            regime=str(params["regime"]),
            alpha_mem=tuple(params["alpha_mem"]),
            seed=int(params["seed"]),
            session_factory=factory,
        )
    else:
        from repro.core.det_matching import solve_matching

        result = solve_matching(
            graph,
            algorithm=spec.name,
            regime=str(params["regime"]),
            alpha_mem=tuple(params["alpha_mem"]),
            seed=int(params["seed"]),
            session_factory=factory,
        )
    return RunRecord(
        experiment="serve",
        workload=str(params["id"]),
        algorithm=spec.name,
        fields=result_to_payload(result),
    )


class BatchEngine:
    """Serve a batch of solve requests through one cache and scheduler.

    The engine owns a :class:`~repro.mpc.trace.ServiceTrace`
    (``engine.trace``) that records every cache hit / miss / store /
    eviction, dedup, and execution outcome — a pure observer, so traced
    and untraced batches produce identical output records.
    """

    def __init__(
        self,
        cache: ResultCache,
        *,
        jobs: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        max_requests: int = 10_000,
        graph_pool: int = 64,
        trace: Optional[ServiceTrace] = None,
    ) -> None:
        if max_requests <= 0:
            raise ServeError(
                f"max_requests must be positive, got {max_requests}"
            )
        if graph_pool <= 0:
            raise ServeError(
                f"graph_pool must be positive, got {graph_pool}"
            )
        self.cache = cache
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.max_requests = max_requests
        self.graph_pool = graph_pool
        self.trace = trace if trace is not None else ServiceTrace()
        # Warm per-graph artifacts only help when solves share a
        # process; isolated cells (jobs > 1 or a timeout) each run in
        # their own worker, exactly like run_cells' execution split.
        self._in_process = jobs <= 1 and timeout is None
        self._factory = SessionFactory()
        # Warm graph pool: loaded graphs outlive a single batch, so a
        # daemon serving the same source repeatedly loads it once.
        # Insertion-ordered with FIFO eviction at ``graph_pool``.
        self._graphs: Dict[str, Graph] = {}
        # serve_request may run on daemon worker threads; the lock
        # guards the shared pools, cache, and trace — never a solve.
        self._lock = threading.RLock()

    # -- request normalisation ------------------------------------------

    def _normalize(
        self, data: Dict[str, object], index: int
    ) -> Dict[str, object]:
        unknown = sorted(set(data) - _REQUEST_KEYS)
        if unknown:
            raise ServeError(
                f"request {index}: unknown fields {unknown}; "
                f"expected a subset of {sorted(_REQUEST_KEYS)}"
            )
        source = data.get("graph")
        if not isinstance(source, dict) or not (
            "input" in source or "family" in source
        ):
            raise ServeError(
                f"request {index}: 'graph' must be an object with "
                "either 'input' (edge-list path) or 'family' "
                "(generator spec)"
            )
        return {
            "id": str(data.get("id", f"req-{index}")),
            "source": source,
            "source_key": json.dumps(
                source, sort_keys=True, separators=(",", ":")
            ),
            "algorithm": str(data.get("algorithm", registry.DET_RULING)),
            "beta": int(data.get("beta", 2)),
            "alpha": int(data.get("alpha", 2)),
            "regime": str(data.get("regime", "sublinear")),
            "alpha_mem": [int(x) for x in data.get("alpha_mem", (2, 3))],
            "seed": int(data.get("seed", 0)),
        }

    def _request_key(
        self, request: Dict[str, object], graph: Graph
    ) -> Tuple[Optional[str], Optional[Tuple[str, str]]]:
        """``(cache key, None)`` or ``(None, (error type, message))``."""
        try:
            spec = registry.get_algorithm(str(request["algorithm"]))
        except ReproError as exc:
            return None, (type(exc).__name__, str(exc))
        params = registry.canonical_cache_params(
            spec,
            beta=int(request["beta"]),
            alpha=int(request["alpha"]),
            regime=str(request["regime"]),
            alpha_mem=tuple(request["alpha_mem"]),
            seed=int(request["seed"]),
        )
        return cache_key(graph.fingerprint(), params), None

    def _check_duplicate_ids(
        self,
        normalized: List[Dict[str, object]],
        linenos: Optional[List[int]],
    ) -> None:
        """Refuse batches whose requests share an id.

        Output records, dedup resolution, and ``ServiceTrace`` events
        are all keyed by ``id`` — two requests with the same explicit
        id would be silently ambiguous everywhere downstream.  Named
        by file line when the caller read the batch from a file, by
        batch position otherwise.
        """

        def where(index: int) -> str:
            if linenos is not None and index < len(linenos):
                return f"line {linenos[index]}"
            return f"request {index}"

        first_index: Dict[str, int] = {}
        for index, request in enumerate(normalized):
            rid = str(request["id"])
            if rid in first_index:
                raise ServeError(
                    f"duplicate request id {rid!r} "
                    f"({where(first_index[rid])} and {where(index)}); "
                    "ids must be unique within a batch"
                )
            first_index[rid] = index

    def _get_graph(self, request: Dict[str, object]) -> Graph:
        """Fetch a request's graph through the warm pool (load once)."""
        source_key = str(request["source_key"])
        graph = self._graphs.get(source_key)
        if graph is None:
            graph = _load_graph(request["source"])
            self._graphs[source_key] = graph
            self.trace.record(
                "graph_load",
                source=source_key,
                fingerprint=graph.fingerprint(),
            )
            while len(self._graphs) > self.graph_pool:
                evicted = next(iter(self._graphs))
                del self._graphs[evicted]
                self.trace.record("graph_evict", source=evicted)
        return graph

    @staticmethod
    def _solve_params(request: Dict[str, object]) -> Dict[str, object]:
        """The parameter dict :func:`_execute_request` consumes."""
        return {
            "id": request["id"],
            "algorithm": request["algorithm"],
            "beta": request["beta"],
            "alpha": request["alpha"],
            "regime": request["regime"],
            "alpha_mem": request["alpha_mem"],
            "seed": request["seed"],
        }

    # -- the batch -------------------------------------------------------

    def run(
        self,
        requests: List[Dict[str, object]],
        *,
        linenos: Optional[List[int]] = None,
    ) -> List[Dict[str, object]]:
        """Serve ``requests``; returns output records in input order.

        ``linenos`` (parallel to ``requests``, from
        :func:`read_requests` with ``with_linenos=True``) lets
        duplicate-id errors name source-file lines.
        """
        if len(requests) > self.max_requests:
            raise ServeError(
                f"batch of {len(requests)} requests exceeds "
                f"max_requests={self.max_requests}; split the stream "
                "or raise the bound"
            )
        normalized = [
            self._normalize(data, index)
            for index, data in enumerate(requests)
        ]
        self._check_duplicate_ids(normalized, linenos)

        # One load per distinct graph source, shared by every request
        # (and by later batches / served requests: the pool is warm).
        graphs: Dict[str, Graph] = {}
        with self._lock:
            for request in normalized:
                source_key = str(request["source_key"])
                if source_key not in graphs:
                    graphs[source_key] = self._get_graph(request)

        # Plan every request before executing anything: hit, miss
        # (first occurrence of a key), dedup (later occurrence), or
        # failed (unresolvable, e.g. an unknown algorithm).
        plans: List[Dict[str, object]] = []
        first_for_key: Dict[str, int] = {}
        for index, request in enumerate(normalized):
            graph = graphs[str(request["source_key"])]
            key, error = self._request_key(request, graph)
            plan: Dict[str, object] = {
                "request": request, "key": key, "payload": None,
                "error": error, "serve": {},
            }
            if error is not None:
                plan["kind"] = "failed"
                self.trace.record(
                    "failed", id=request["id"], error_type=error[0]
                )
            elif key in first_for_key:
                plan["kind"] = "dedup"
                self.trace.record("dedup", id=request["id"], key=key)
            else:
                first_for_key[key] = index
                cached = self.cache.get(key)
                if cached is not None:
                    plan["kind"] = "hit"
                    plan["payload"] = cached
                    self.trace.record("cache_hit", id=request["id"], key=key)
                else:
                    plan["kind"] = "miss"
                    self.trace.record("cache_miss", id=request["id"], key=key)
            plans.append(plan)

        self._execute_misses(plans, graphs)

        # Dedup'd requests resolve to their key's outcome — payload or
        # failure alike (an error is one outcome of the shared solve).
        outcomes = {
            str(plan["key"]): plan
            for plan in plans
            if plan["kind"] in ("hit", "miss")
        }
        for plan in plans:
            if plan["kind"] == "dedup":
                primary = outcomes[str(plan["key"])]
                plan["payload"] = primary["payload"]
                plan["error"] = primary["error"]

        return [self._output_record(plan) for plan in plans]

    # -- the per-request path (daemon hot path) --------------------------

    def serve_request(
        self, data: Dict[str, object], *, index: int = 0
    ) -> Dict[str, object]:
        """Serve one request through the warm pools; returns its record.

        The reusable per-request execution path the serve daemon runs
        on its worker threads: normalise, fetch the graph from the warm
        pool, first-hop the result cache, and only then solve in
        process with the warm :class:`SessionFactory`.  The returned
        record is shaped exactly like a batch record (deterministic
        part + ``_serve`` side channel), and for the same request its
        deterministic part is byte-identical to the batch path's —
        both resolve through the same cache key and the same runner.

        Malformed requests (unknown fields, bad ``graph``) raise
        :class:`ServeError`, mirroring the batch path; everything past
        validation — an unloadable graph, an unknown algorithm, a solve
        fault — becomes a structured failure record, so one bad request
        can never take a daemon worker down.  Shared state (graph pool,
        cache, trace) is mutated under the engine lock; the solve
        itself runs outside it, so workers only serialise on
        bookkeeping.
        """
        request = self._normalize(data, index)
        plan: Dict[str, object] = {
            "request": request, "key": None, "payload": None,
            "error": None, "serve": {},
        }
        with self._lock:
            try:
                graph = self._get_graph(request)
            except Exception as exc:  # unloadable source → failure record
                plan["kind"] = "failed"
                plan["error"] = (type(exc).__name__, str(exc))
                self.trace.record(
                    "failed", id=request["id"],
                    error_type=type(exc).__name__,
                )
                return self._output_record(plan)
            key, error = self._request_key(request, graph)
            plan["key"] = key
            if error is not None:
                plan["kind"] = "failed"
                plan["error"] = error
                self.trace.record(
                    "failed", id=request["id"], error_type=error[0]
                )
                return self._output_record(plan)
            cached = self.cache.get(key)
            if cached is not None:
                plan["kind"] = "hit"
                plan["payload"] = cached
                self.trace.record("cache_hit", id=request["id"], key=key)
                return self._output_record(plan)
            self.trace.record("cache_miss", id=request["id"], key=key)
        plan["kind"] = "miss"
        try:
            record = _execute_request(
                graph, self._solve_params(request), factory=self._factory
            )
        except Exception as exc:
            plan["error"] = (type(exc).__name__, str(exc))
            with self._lock:
                self.trace.record(
                    "failed", id=request["id"], key=key,
                    error_type=type(exc).__name__,
                )
            return self._output_record(plan)
        payload = dict(record.fields)
        plan["payload"] = payload
        with self._lock:
            self.cache.put(str(key), payload)
            self.trace.record("executed", id=request["id"], key=key)
            self.trace.record("cache_store", id=request["id"], key=key)
        return self._output_record(plan)

    def _execute_misses(
        self, plans: List[Dict[str, object]], graphs: Dict[str, Graph]
    ) -> None:
        misses = [plan for plan in plans if plan["kind"] == "miss"]
        if not misses:
            return
        runner = (
            partial(_execute_request, factory=self._factory)
            if self._in_process
            else _execute_request
        )
        cells = []
        for plan in misses:
            request = plan["request"]
            params = self._solve_params(request)
            cells.append(
                Cell(
                    key=str(plan["key"]),
                    runner=runner,
                    args=(graphs[str(request["source_key"])], params),
                    workload=str(request["id"]),
                    algorithm=str(request["algorithm"]),
                )
            )
        records = run_cells(
            "serve", cells,
            jobs=self.jobs, retries=self.retries, timeout=self.timeout,
        )
        for plan, record in zip(misses, records):
            request = plan["request"]
            plan["serve"] = dict(record.meta)
            if record.get("status") == FAILED:
                plan["error"] = (
                    str(record.get("error_type")), str(record.get("error"))
                )
                self.trace.record(
                    "failed", id=request["id"], key=plan["key"],
                    error_type=plan["error"][0],
                )
                continue
            payload = dict(record.fields)
            plan["payload"] = payload
            self.cache.put(str(plan["key"]), payload)
            self.trace.record(
                "executed", id=request["id"], key=plan["key"]
            )
            self.trace.record(
                "cache_store", id=request["id"], key=plan["key"]
            )

    def _output_record(self, plan: Dict[str, object]) -> Dict[str, object]:
        request = plan["request"]
        serve: Dict[str, object] = {"cache": plan["kind"], **plan["serve"]}
        if plan["error"] is not None:
            error_type, message = plan["error"]
            return {
                "id": request["id"],
                "key": plan["key"],
                "status": FAILED,
                "error_type": error_type,
                "error": message,
                "_serve": serve,
            }
        payload = plan["payload"]
        record: Dict[str, object] = {
            "id": request["id"],
            "key": plan["key"],
            "status": "ok",
        }
        for field, value in payload.items():
            if field in _TIMING_KEYS:
                serve[field] = value  # observability, not model output
            else:
                record[field] = value
        record["_serve"] = serve
        return record
