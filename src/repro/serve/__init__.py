"""The serve layer: content-addressed result cache + batched requests.

``repro.serve`` sits on top of the solver session/pipeline layer and
turns one-shot solves into a *service*: a two-tier
:class:`~repro.serve.cache.ResultCache` keyed by graph content and
canonical solve parameters, and a :class:`~repro.serve.engine.BatchEngine`
that dedups, caches, and fan-outs a JSONL request stream — plus a
persistent :class:`~repro.serve.daemon.ServeDaemon` front end with
admission control and per-tenant fairness.  The CLI surfaces are
``repro-mpc batch``, ``repro-mpc cache``, and ``repro-mpc serve``.

Caching is sound because every registered algorithm is deterministic in
its semantic inputs (the repository's central bit-identity contract);
see DESIGN.md §10 for the full argument and the ``_serve`` side-channel
split that keeps output records comparable across cache states.
"""

from repro.serve.cache import (
    ResultCache,
    cache_key,
    payload_to_result,
    result_to_payload,
)
from repro.serve.daemon import (
    AdmissionPolicy,
    ServeDaemon,
    drive_requests,
    estimate_request_words,
    replay_requests,
)
from repro.serve.engine import (
    BatchEngine,
    read_requests,
    records_to_lines,
    write_records,
)

__all__ = [
    "AdmissionPolicy",
    "BatchEngine",
    "ResultCache",
    "ServeDaemon",
    "cache_key",
    "drive_requests",
    "estimate_request_words",
    "payload_to_result",
    "read_requests",
    "records_to_lines",
    "replay_requests",
    "result_to_payload",
    "write_records",
]
