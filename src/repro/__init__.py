"""mpc-ruling-sets: deterministic massively parallel ruling-set algorithms.

A reproduction of *"Brief Announcement: Deterministic Massively Parallel
Algorithms for Ruling Sets"* (Pai & Pemmaraju, PODC 2022): deterministic
``(2, β)``-ruling set and MIS algorithms in the MPC model, their
randomized baselines, the derandomization machinery (pairwise-independent
families + exact method of conditional expectations), a budget-enforcing
MPC simulator, a LOCAL-model simulator with classic baselines, and the
workload generators and verification oracles needed to benchmark it all.

Quickstart::

    from repro import generators, solve_ruling_set

    graph = generators.gnp_random_graph(300, 1, 10, seed=7)
    result = solve_ruling_set(graph, algorithm="det-ruling", beta=2)
    print(result.size, result.rounds, result.metrics["peak_memory_words"])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
experiment index.
"""

from repro.core import (
    RulingSetResult,
    check_ruling_set,
    det_luby_mis,
    det_ruling_set,
    greedy_mis,
    greedy_ruling_set,
    rand_luby_mis,
    rand_ruling_set,
    solve_matching,
    solve_ruling_set,
    verify_maximal_matching,
    verify_ruling_set,
)
from repro.graph import Graph, GraphBuilder, generators
from repro.mpc import DistributedGraph, MPCConfig, Simulator

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "generators",
    "MPCConfig",
    "Simulator",
    "DistributedGraph",
    "RulingSetResult",
    "solve_ruling_set",
    "verify_ruling_set",
    "check_ruling_set",
    "greedy_mis",
    "greedy_ruling_set",
    "det_luby_mis",
    "det_ruling_set",
    "rand_luby_mis",
    "rand_ruling_set",
    "solve_matching",
    "verify_maximal_matching",
    "__version__",
]
