"""mpc-ruling-sets: deterministic massively parallel ruling-set algorithms.

A reproduction of *"Brief Announcement: Deterministic Massively Parallel
Algorithms for Ruling Sets"* (Pai & Pemmaraju, PODC 2022): deterministic
``(2, β)``-ruling set and MIS algorithms in the MPC model, their
randomized baselines, the derandomization machinery (pairwise-independent
families + exact method of conditional expectations), a budget-enforcing
MPC simulator, a LOCAL-model simulator with classic baselines, and the
workload generators and verification oracles needed to benchmark it all.

Quickstart::

    from repro import algorithm_names, generators, solve_ruling_set

    graph = generators.gnp_random_graph(300, 1, 10, seed=7)
    result = solve_ruling_set(graph, beta=2)   # the headline algorithm
    print(result.size, result.rounds, result.metrics["peak_memory_words"])
    print(algorithm_names())                   # everything registered

Every algorithm is an entry in :mod:`repro.core.registry` — the CLI,
sweeps, and benchmark drivers all derive their algorithm lists from it.
See DESIGN.md for the system inventory and EXPERIMENTS.md for the
experiment index.
"""

from repro.core import (
    AlgorithmSpec,
    MatchingResult,
    RulingSetResult,
    SolverSession,
    algorithm_names,
    check_ruling_set,
    det_luby_mis,
    det_ruling_set,
    get_algorithm,
    greedy_mis,
    greedy_ruling_set,
    rand_luby_mis,
    rand_ruling_set,
    registry,
    solve_matching,
    solve_ruling_set,
    verify_maximal_matching,
    verify_ruling_set,
)
from repro.graph import Graph, GraphBuilder, generators
from repro.mpc import DistributedGraph, MPCConfig, Simulator

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "generators",
    "MPCConfig",
    "Simulator",
    "DistributedGraph",
    "registry",
    "AlgorithmSpec",
    "algorithm_names",
    "get_algorithm",
    "SolverSession",
    "RulingSetResult",
    "MatchingResult",
    "solve_ruling_set",
    "verify_ruling_set",
    "check_ruling_set",
    "greedy_mis",
    "greedy_ruling_set",
    "det_luby_mis",
    "det_ruling_set",
    "rand_luby_mis",
    "rand_ruling_set",
    "solve_matching",
    "verify_maximal_matching",
    "__version__",
]
