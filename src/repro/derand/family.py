"""The affine pairwise-independent hash family over ``GF(p)``.

``H = { h_{a,b}(x) = (a x + b) mod p : a, b in Z_p }`` satisfies *exact*
pairwise independence: for distinct ``x != y`` and any targets
``(s, t) in Z_p^2`` there is exactly one ``(a, b)`` with
``h(x) = s, h(y) = t`` — the map ``(a, b) -> (h(x), h(y))`` is a bijection.
Every deterministic algorithm in this library draws its "randomness" from
one member of this family, selected by
:mod:`repro.derand.conditional` or :mod:`repro.derand.seed_search`.

The modulus must exceed every hashed id; the deterministic algorithms use
``field_for_ids`` with headroom factor 4 so marking thresholds
``p // (2 d)`` never truncate to zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import DerandomizationError
from repro.util.prime import is_prime, next_prime


@dataclass(frozen=True)
class Seed:
    """One member ``h_{a,b}`` of the affine family mod ``p``."""

    a: int
    b: int
    p: int

    def __post_init__(self) -> None:
        if not is_prime(self.p):
            raise DerandomizationError(f"modulus {self.p} is not prime")
        if not (0 <= self.a < self.p and 0 <= self.b < self.p):
            raise DerandomizationError(
                f"seed ({self.a}, {self.b}) out of range for p={self.p}"
            )

    def hash(self, x: int) -> int:
        """Return ``h_{a,b}(x)``.

        >>> Seed(2, 3, 7).hash(5)
        6
        """
        return (self.a * x + self.b) % self.p

    def index(self) -> int:
        """Rank of this seed in the canonical enumeration ``a * p + b``."""
        return self.a * self.p + self.b


@dataclass(frozen=True)
class AffineFamily:
    """The full family for a fixed prime modulus ``p``."""

    p: int

    def __post_init__(self) -> None:
        if not is_prime(self.p):
            raise DerandomizationError(f"modulus {self.p} is not prime")

    @classmethod
    def field_for_ids(cls, max_id: int, headroom: int = 4) -> "AffineFamily":
        """Family whose modulus exceeds ``headroom * (max_id + 1)``.

        >>> AffineFamily.field_for_ids(10).p >= 44
        True
        """
        if max_id < 0:
            raise DerandomizationError("max_id must be non-negative")
        if headroom < 1:
            raise DerandomizationError("headroom must be >= 1")
        return cls(p=next_prime(headroom * (max_id + 1)))

    @property
    def size(self) -> int:
        """Number of members, ``p^2``."""
        return self.p * self.p

    def seed(self, a: int, b: int) -> Seed:
        """Return member ``h_{a,b}``."""
        return Seed(a=a % self.p, b=b % self.p, p=self.p)

    def seed_by_index(self, index: int) -> Seed:
        """Return the ``index``-th member of the canonical enumeration.

        The enumeration starts at ``a = 1`` (injective members first) and
        wraps the degenerate ``a = 0`` members to the end — scanning from
        index 0 therefore tries useful hash functions first.

        >>> AffineFamily(7).seed_by_index(0)
        Seed(a=1, b=0, p=7)
        """
        index %= self.size
        a, b = divmod(index, self.p)
        return Seed(a=(a + 1) % self.p, b=b, p=self.p)

    def enumerate_seeds(self) -> Iterator[Seed]:
        """Yield every member in canonical scan order (tests only)."""
        for index in range(self.size):
            yield self.seed_by_index(index)

    def scan_seed(self, index: int) -> Seed:
        """The ``index``-th member of the *well-spread* scan order.

        The canonical enumeration fixes ``a`` and sweeps ``b``, which is
        the wrong order for scanning: nearby members differ only by a
        shift, so an unlucky slab produces long runs of correlated
        rejections.  This order decorrelates consecutive candidates by
        driving both coordinates with the SplitMix64 mixer (still a pure
        function of ``index`` — deterministic and reproducible; repeats
        are possible and harmless).

        >>> AffineFamily(11).scan_seed(3) == AffineFamily(11).scan_seed(3)
        True
        """
        from repro.util.rng import splitmix64

        a = 1 + splitmix64(2 * index) % max(1, self.p - 1)
        b = splitmix64(2 * index + 1) % self.p
        return Seed(a=a % self.p, b=b, p=self.p)


@dataclass(frozen=True)
class PolynomialSeed:
    """One member of the degree-``k-1`` polynomial (k-wise) family.

    ``h(x) = (c_0 + c_1 x + ... + c_{k-1} x^{k-1}) mod p`` — evaluated by
    Horner's rule.  ``coefficients`` are ``(c_0, ..., c_{k-1})``.
    """

    coefficients: Tuple[int, ...]
    p: int

    def __post_init__(self) -> None:
        if not is_prime(self.p):
            raise DerandomizationError(f"modulus {self.p} is not prime")
        if not self.coefficients:
            raise DerandomizationError("need at least one coefficient")
        for c in self.coefficients:
            if not 0 <= c < self.p:
                raise DerandomizationError(
                    f"coefficient {c} out of range for p={self.p}"
                )

    @property
    def independence(self) -> int:
        """The k for which this family member's family is k-wise uniform."""
        return len(self.coefficients)

    def hash(self, x: int) -> int:
        """Evaluate the polynomial at ``x`` (Horner).

        >>> PolynomialSeed((3, 2, 1), 7).hash(2)   # 3 + 2*2 + 1*4 = 11
        4
        """
        value = 0
        for c in reversed(self.coefficients):
            value = (value * x + c) % self.p
        return value


@dataclass(frozen=True)
class PolynomialFamily:
    """The degree-``(k-1)`` polynomial family: exactly k-wise independent.

    For ``k`` distinct points, the evaluation map from coefficient
    vectors to value vectors is a bijection (polynomial interpolation),
    so ``(h(x_1), ..., h(x_k))`` is uniform on ``Z_p^k``.  ``k = 2``
    coincides with :class:`AffineFamily`.  Provided as a toolkit
    extension: estimators needing higher moments (variance of sample
    sizes, fourth-moment concentration) can draw from here.
    """

    p: int
    k: int

    def __post_init__(self) -> None:
        if not is_prime(self.p):
            raise DerandomizationError(f"modulus {self.p} is not prime")
        if self.k < 1:
            raise DerandomizationError(f"k must be >= 1, got {self.k}")

    @property
    def size(self) -> int:
        """Number of members, ``p^k``."""
        return self.p**self.k

    def seed_by_index(self, index: int) -> PolynomialSeed:
        """The ``index``-th member: coefficients are base-``p`` digits."""
        index %= self.size
        coefficients = []
        for _ in range(self.k):
            index, digit = divmod(index, self.p)
            coefficients.append(digit)
        return PolynomialSeed(tuple(coefficients), self.p)

    def scan_seed(self, index: int) -> PolynomialSeed:
        """Well-spread deterministic scan order (cf. AffineFamily)."""
        from repro.util.rng import splitmix64

        coefficients = tuple(
            splitmix64(index * self.k + j) % self.p for j in range(self.k)
        )
        return PolynomialSeed(coefficients, self.p)


def threshold_for_rate(p: int, rate_num: int, rate_den: int) -> int:
    """Threshold ``T`` so that ``Pr[h(x) < T] ≈ rate_num / rate_den``.

    Rounds up so the probability is at least the requested rate and always
    at least ``1/p`` (a zero threshold would make sampling impossible).

    >>> threshold_for_rate(101, 1, 2)
    51
    """
    if rate_den <= 0 or rate_num < 0:
        raise DerandomizationError("rate must be a non-negative fraction")
    return min(p, max(1, -(-p * rate_num // rate_den)))
