"""Linear threshold estimators with exactly computable expectations.

A :class:`ThresholdEstimator` is a weighted sum of indicator events over
one hash function ``h`` drawn from the affine family mod ``p``:

* **vertex terms** ``w * [h(x) < T]``;
* **pair terms** ``w * [h(x1) < T1 and h(x2) < T2]`` with ``x1 != x2``.

For the affine family all three expectation queries the method of
conditional expectations needs are *exact integer computations*:

``expectation_x_p2``
    ``p^2 * E[Phi]`` over the whole family — vertex events contribute
    ``w * T * p``, pair events ``w * T1 * T2`` (exact pairwise
    independence).

``cond_a_x_p``
    ``p * E[Phi | a]`` with ``b`` uniform: the event ``h(x) < T`` is
    ``b in I_x`` where ``I_x`` is the cyclic interval of length ``T``
    starting at ``(-a x) mod p``, so a pair event's conditional
    probability is ``|I_{x1} ∩ I_{x2}| / p`` — a cyclic-interval overlap.

``cond_ab_range``
    ``sum of w * |I ∩ [b_lo, b_hi)|`` — the numerator of
    ``E[Phi | a, b in range]`` used when fixing the bits of ``b``
    most-significant-first.

The estimator is also evaluated pointwise (``value``) to certify that the
seed finally committed meets its guaranteed bound.

Hot-path caching (terms are immutable once a selection starts, so all of
this is invisible to callers):

* ``expectation_x_p2`` and the vertex part of ``cond_a_x_p`` are running
  sums maintained at term insertion — O(1) per query instead of a full
  term scan;
* the per-term cyclic-interval segments (and pair-term intersections)
  for one multiplier ``a`` are derived once and reused across every
  ``cond_ab_range`` query for that ``a`` — the offset-fixing stage asks
  about ~``2^c · ceil(log2(p)/c)`` ranges under a single multiplier, and
  previously re-derived every interval per range.  Adding a term
  invalidates the cache, so caching can never change a result.  The
  cache keys include the modulus alongside the multiplier: ``p`` is
  immutable per instance, so the extra key component is pure defence —
  no future refactor can make a cache entry derived in one field answer
  a query in another.

**Kernels.**  ``kernel="numpy"`` stores the terms a second time as flat
int64 arrays and evaluates every query (and the batched ``*_many``
variants the seed search uses) with array expressions instead of
per-term Python loops.  The array path is *exact by construction*: the
modulus must satisfy :func:`repro.mpc.state_layout.supports_modulus`
(int64 hash products cannot wrap), weighted sums are int64 only when a
precomputed magnitude bound proves no overflow and fall back to
arbitrary-precision Python summation otherwise, and every result is
converted back to a plain ``int``.  Any condition the array path cannot
prove exact silently routes the call through the reference kernel — the
two kernels are bit-identical by contract (CI replays the refactor
parity oracle under both and fails on any record diff).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.derand.family import Seed
from repro.errors import DerandomizationError
from repro.mpc.state_layout import (
    KERNEL_NUMPY,
    KERNEL_PYTHON,
    numpy_or_none,
    supports_modulus,
)
from repro.util.intervals import (
    intersect_segments,
    interval_to_segments,
    segments_length,
    segments_overlap_range,
)

_INT64_MAX = (1 << 63) - 1


@dataclass(frozen=True)
class VertexTerm:
    """``weight * [h(x) < threshold]``."""

    x: int
    threshold: int
    weight: int


@dataclass(frozen=True)
class PairTerm:
    """``weight * [h(x1) < t1 and h(x2) < t2]`` with ``x1 != x2``."""

    x1: int
    t1: int
    x2: int
    t2: int
    weight: int


class ThresholdEstimator:
    """A weighted sum of threshold events, exactly analysable mod ``p``.

    ``kernel`` selects the evaluation backend: ``"python"`` (reference,
    default) or ``"numpy"`` (vectorized, bit-identical, used when NumPy
    is importable and the modulus fits the exactness guard — otherwise
    the instance degrades to the reference kernel automatically).
    """

    def __init__(self, p: int, kernel: str = KERNEL_PYTHON):
        if p < 2:
            raise DerandomizationError(f"modulus must be >= 2, got {p}")
        self.p = p
        self.vertex_terms: List[VertexTerm] = []
        self.pair_terms: List[PairTerm] = []
        # Running sums maintained at insertion (term lists are append-only).
        self._vertex_weighted_thresholds = 0  # Σ w·T   (cond_a_x_p vertex part)
        self._expectation_x_p2 = 0            # Σ w·T·p + Σ w·T1·T2
        self._max_abs_weight = 0              # array-path overflow bound
        # Columnar copies of the term fields, appended at insertion:
        # ``np.array(list_of_ints)`` converts at C speed, where iterating
        # dataclass attributes per element would dominate the array
        # path's setup cost on small estimators.
        self._cols: Tuple[List[int], ...] = tuple([] for _ in range(8))
        # Per-multiplier segment cache: ((p, a), [(weight, segments), ...]).
        self._a_cache_key: Optional[Tuple[int, int]] = None
        self._a_cache_terms: Optional[List[Tuple[int, List[Tuple[int, int]]]]] = None
        # Array backend: flat int64 term arrays + per-multiplier arcs.
        self._np = numpy_or_none() if kernel == KERNEL_NUMPY else None
        if self._np is not None and not supports_modulus(p):
            self._np = None
        self.kernel = KERNEL_NUMPY if self._np is not None else KERNEL_PYTHON
        self._flat: Optional[dict] = None
        self._arc_cache_key: Optional[Tuple[int, int]] = None
        self._arc_cache: Optional[Tuple[object, object, object]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex_term(self, x: int, threshold: int, weight: int) -> None:
        """Add ``weight * [h(x) < threshold]``."""
        self._check_threshold(threshold)
        self.vertex_terms.append(
            VertexTerm(x=x, threshold=threshold, weight=weight)
        )
        vx, vt, vw = self._cols[0], self._cols[1], self._cols[2]
        vx.append(x)
        vt.append(threshold)
        vw.append(weight)
        self._vertex_weighted_thresholds += weight * threshold
        self._expectation_x_p2 += weight * threshold * self.p
        self._max_abs_weight = max(self._max_abs_weight, abs(weight))
        self._invalidate_caches()

    def add_pair_term(
        self, x1: int, t1: int, x2: int, t2: int, weight: int
    ) -> None:
        """Add ``weight * [h(x1) < t1 and h(x2) < t2]``; needs ``x1 != x2``.

        Pairwise independence (hence exactness of ``expectation_x_p2``)
        requires the two hashed points to be distinct field elements.
        """
        if x1 % self.p == x2 % self.p:
            raise DerandomizationError(
                f"pair term needs distinct points mod p, got {x1}, {x2}"
            )
        self._check_threshold(t1)
        self._check_threshold(t2)
        self.pair_terms.append(
            PairTerm(x1=x1, t1=t1, x2=x2, t2=t2, weight=weight)
        )
        px1, pt1, px2, pt2, pw = self._cols[3:]
        px1.append(x1)
        pt1.append(t1)
        px2.append(x2)
        pt2.append(t2)
        pw.append(weight)
        self._expectation_x_p2 += weight * t1 * t2
        self._max_abs_weight = max(self._max_abs_weight, abs(weight))
        self._invalidate_caches()

    def _invalidate_caches(self) -> None:
        """Terms changed: every derived structure is stale."""
        self._a_cache_key = self._a_cache_terms = None
        self._flat = None
        self._arc_cache_key = self._arc_cache = None

    def _check_threshold(self, threshold: int) -> None:
        if not 0 <= threshold <= self.p:
            raise DerandomizationError(
                f"threshold {threshold} out of [0, {self.p}]"
            )

    @property
    def num_terms(self) -> int:
        """Total term count."""
        return len(self.vertex_terms) + len(self.pair_terms)

    # ------------------------------------------------------------------
    # Array backend plumbing
    # ------------------------------------------------------------------
    def _flat_terms_arrays(self) -> Optional[dict]:
        """Flat int64 term arrays, or None when the array path can't run.

        Built lazily once per term-set (the term lists are append-only
        and every append invalidates).  A term value outside int64 —
        ids and thresholds are bounded by ``p`` so only a pathological
        weight can get there — disables the array path for this
        instance rather than risking a wrapped product.
        """
        if self._np is None:
            return None
        if self._flat is None:
            np = self._np
            try:
                arrays = [
                    np.array(col, dtype=np.int64) for col in self._cols
                ]
            except OverflowError:
                self._np = None
                self.kernel = KERNEL_PYTHON
                return None
            vx, vt, vw, px1, pt1, px2, pt2, pw = arrays
            self._flat = {
                "vx": vx, "vt": vt, "vw": vw,
                "px1": px1, "pt1": pt1, "px2": px2, "pt2": pt2, "pw": pw,
                # (x1 - x2) per pair term, shared by every overlap query.
                "pdx": px1 - px2,
            }
        return self._flat

    def _sum_exact(self, weights, values, count: int) -> int:
        """Σ weights·values as an exact Python int.

        int64 arithmetic is used only when the precomputed magnitude
        bound proves the products and their sum cannot overflow;
        otherwise the reduction runs in arbitrary-precision Python ints
        (same result, slower — exactness is never negotiable).
        """
        if count == 0:
            return 0
        bound = self._max_abs_weight * self.p * count
        if bound <= _INT64_MAX:
            return int((weights * values).sum())
        return sum(
            w * v for w, v in zip(weights.tolist(), values.tolist())
        )

    def _sum_exact_rows(self, weights, values, count: int) -> List[int]:
        """Row-wise Σ weights·values for a 2-D ``values`` matrix."""
        if count == 0:
            return [0] * values.shape[0]
        bound = self._max_abs_weight * self.p * count
        if bound <= _INT64_MAX:
            return [int(s) for s in (weights * values).sum(axis=1).tolist()]
        return [
            sum(w * v for w, v in zip(weights.tolist(), row))
            for row in values.tolist()
        ]

    def _pair_overlap_matrix(self, flat: dict, a_column):
        """``|I_{x1} ∩ I_{x2}|`` for every (multiplier row, pair term).

        With ``d = (a·(x1 − x2)) mod p`` the two intervals, shifted so
        the first starts at 0, are ``[0, t1)`` and ``[d, d+t2) mod p``;
        the overlap is the clamped head segment plus the clamped
        wrap-around segment.  Every quantity is below ``2^62`` for a
        supported modulus, so int64 is exact.
        """
        np = self._np
        p = self.p
        d = (a_column * flat["pdx"]) % p
        t1 = flat["pt1"]
        t2 = flat["pt2"]
        head = np.maximum(0, np.minimum(t1, d + t2) - d)
        wrap = np.maximum(0, np.minimum(t1, d + t2 - p))
        return head + wrap

    def _arcs_for(self, a: int):
        """Every term's b-interval(s) under ``a`` as flat arc arrays.

        Returns ``(starts, lengths, weights)`` — one arc per vertex term
        and two (possibly empty) arcs per pair term, the array analogue
        of :meth:`_prepared_terms`.  Cached per ``(p, a)`` exactly like
        the segment cache; term addition invalidates.
        """
        key = (self.p, a)
        if self._arc_cache_key != key:
            flat = self._flat_terms_arrays()
            np = self._np
            p = self.p
            sv = (-a * flat["vx"]) % p
            s1 = (-a * flat["px1"]) % p
            d = (a * flat["pdx"]) % p
            t1 = flat["pt1"]
            t2 = flat["pt2"]
            head_len = np.maximum(0, np.minimum(t1, d + t2) - d)
            wrap_len = np.maximum(0, np.minimum(t1, d + t2 - p))
            starts = np.concatenate((sv, (s1 + d) % p, s1))
            lengths = np.concatenate((flat["vt"], head_len, wrap_len))
            weights = np.concatenate((flat["vw"], flat["pw"], flat["pw"]))
            self._arc_cache_key = key
            self._arc_cache = (starts, lengths, weights)
        return self._arc_cache

    # ------------------------------------------------------------------
    # Exact analysis
    # ------------------------------------------------------------------
    def value(self, seed: Seed) -> int:
        """Pointwise value of the estimator at ``seed``.

        >>> est = ThresholdEstimator(7)
        >>> est.add_vertex_term(x=3, threshold=4, weight=5)
        >>> est.value(Seed(1, 0, 7))   # h(3) = 3 < 4
        5
        """
        flat = self._flat_terms_arrays()
        if flat is not None:
            np = self._np
            p = self.p
            a, b = seed.a, seed.b
            v_hit = ((a * flat["vx"] + b) % p) < flat["vt"]
            p_hit = (((a * flat["px1"] + b) % p) < flat["pt1"]) & (
                ((a * flat["px2"] + b) % p) < flat["pt2"]
            )
            count = self.num_terms
            bound = self._max_abs_weight * count
            if bound <= _INT64_MAX:
                return int(flat["vw"][v_hit].sum()) + int(
                    flat["pw"][p_hit].sum()
                )
            return sum(flat["vw"][v_hit].tolist()) + sum(
                flat["pw"][p_hit].tolist()
            )
        total = 0
        for term in self.vertex_terms:
            if seed.hash(term.x) < term.threshold:
                total += term.weight
        for term in self.pair_terms:
            if (
                seed.hash(term.x1) < term.t1
                and seed.hash(term.x2) < term.t2
            ):
                total += term.weight
        return total

    def expectation_x_p2(self) -> int:
        """Return the integer ``p^2 * E[Phi]`` over the full family."""
        return self._expectation_x_p2

    def _interval(self, x: int, threshold: int, a: int):
        """Segments of ``{b : (a x + b) mod p < threshold}``."""
        start = (-a * x) % self.p
        return interval_to_segments(start, threshold, self.p)

    def _prepared_terms(
        self, a: int
    ) -> List[Tuple[int, List[Tuple[int, int]]]]:
        """All terms as ``(weight, b-segments)`` under multiplier ``a``.

        Derived once per ``a`` and cached; every range query under the
        same multiplier reuses the list.  The cache holds one multiplier
        (the offset-fixing stage only ever asks about the chosen one), so
        memory stays O(terms).
        """
        key = (self.p, a)
        if self._a_cache_key != key:
            terms: List[Tuple[int, List[Tuple[int, int]]]] = []
            for term in self.vertex_terms:
                terms.append(
                    (
                        term.weight,
                        self._interval(term.x, term.threshold, a),
                    )
                )
            for term in self.pair_terms:
                terms.append(
                    (
                        term.weight,
                        intersect_segments(
                            self._interval(term.x1, term.t1, a),
                            self._interval(term.x2, term.t2, a),
                        ),
                    )
                )
            self._a_cache_key = key
            self._a_cache_terms = terms
        return self._a_cache_terms

    def cond_a_x_p(self, a: int) -> int:
        """Return the integer ``p * E[Phi | a]`` (``b`` uniform on Z_p).

        The vertex part is the precomputed ``Σ w·T`` (a vertex event's
        conditional probability given ``a`` is ``T/p`` regardless of
        ``a``); only pair overlaps depend on the multiplier.
        """
        flat = self._flat_terms_arrays()
        if flat is not None:
            overlap = self._pair_overlap_matrix(flat, a)
            return self._vertex_weighted_thresholds + self._sum_exact(
                flat["pw"], overlap, len(self.pair_terms)
            )
        total = self._vertex_weighted_thresholds
        for term in self.pair_terms:
            overlap = segments_length(
                intersect_segments(
                    self._interval(term.x1, term.t1, a),
                    self._interval(term.x2, term.t2, a),
                )
            )
            total += term.weight * overlap
        return total

    def cond_a_x_p_many(self, multipliers: Sequence[int]) -> List[int]:
        """``cond_a_x_p`` for a batch of multipliers at once.

        The numpy kernel evaluates the whole (multipliers × pair-terms)
        overlap matrix in one expression; the reference kernel loops —
        the results are identical by contract, so callers batch freely.
        """
        multipliers = list(multipliers)
        flat = self._flat_terms_arrays()
        if flat is not None and multipliers:
            np = self._np
            a_col = np.fromiter(
                multipliers, dtype=np.int64, count=len(multipliers)
            ).reshape(-1, 1)
            overlap = self._pair_overlap_matrix(flat, a_col)
            pair_sums = self._sum_exact_rows(
                flat["pw"], overlap, len(self.pair_terms)
            )
            base = self._vertex_weighted_thresholds
            return [base + s for s in pair_sums]
        return [self.cond_a_x_p(a) for a in multipliers]

    def cond_ab_range(self, a: int, b_lo: int, b_hi: int) -> int:
        """Return ``sum_terms w * |I_term ∩ [b_lo, b_hi)|``.

        Dividing by ``b_hi - b_lo`` (the caller clips the range to
        ``[0, p)`` first) gives ``E[Phi | a, b in range]`` exactly.
        """
        if not 0 <= b_lo <= b_hi <= self.p:
            raise DerandomizationError(
                f"range [{b_lo}, {b_hi}) must lie within [0, {self.p}]"
            )
        if self._flat_terms_arrays() is not None:
            return self.cond_ab_range_many(a, [(b_lo, b_hi)])[0]
        total = 0
        for weight, segments in self._prepared_terms(a):
            total += weight * segments_overlap_range(segments, b_lo, b_hi)
        return total

    def cond_ab_range_many(
        self, a: int, ranges: Sequence[Tuple[int, int]]
    ) -> List[int]:
        """``cond_ab_range`` for a batch of ranges under one multiplier.

        This is the offset-fixing stage's shape: ``2^c`` candidate
        ranges per chunk, all under the already-committed ``a``.  The
        numpy kernel reuses the per-multiplier arc arrays across every
        range (mirroring the reference kernel's segment cache) and
        clamps all (ranges × arcs) overlaps in one expression.
        """
        for b_lo, b_hi in ranges:
            if not 0 <= b_lo <= b_hi <= self.p:
                raise DerandomizationError(
                    f"range [{b_lo}, {b_hi}) must lie within [0, {self.p}]"
                )
        flat = self._flat_terms_arrays()
        if flat is None or not ranges:
            # Degenerate ranges are 0 by definition; skip the term scan.
            return [
                self.cond_ab_range(a, b_lo, b_hi) if b_lo < b_hi else 0
                for b_lo, b_hi in ranges
            ]
        np = self._np
        p = self.p
        starts, lengths, weights = self._arcs_for(a)
        lo = np.fromiter(
            (r[0] for r in ranges), dtype=np.int64, count=len(ranges)
        ).reshape(-1, 1)
        hi = np.fromiter(
            (r[1] for r in ranges), dtype=np.int64, count=len(ranges)
        ).reshape(-1, 1)
        # Arc (s, L) splits into head [s, min(s+L, p)) and, when it
        # wraps, tail [0, s+L-p); clamp both against [lo, hi).
        head_end = np.minimum(starts + lengths, p)
        head = np.maximum(
            0, np.minimum(hi, head_end) - np.maximum(lo, starts)
        )
        tail = np.maximum(0, np.minimum(hi, starts + lengths - p) - lo)
        # Each pair term contributes two arcs, so the weighted-sum bound
        # uses the arc count.
        return self._sum_exact_rows(
            weights, head + tail, int(starts.shape[0])
        )

    # ------------------------------------------------------------------
    # Serialization (for distributed term storage on machines)
    # ------------------------------------------------------------------
    def to_flat_terms(
        self,
    ) -> Tuple[List[Tuple[int, int, int]], List[Tuple[int, int, int, int, int]]]:
        """Return terms as plain integer tuples (machine-storable)."""
        return (
            [(t.x, t.threshold, t.weight) for t in self.vertex_terms],
            [(t.x1, t.t1, t.x2, t.t2, t.weight) for t in self.pair_terms],
        )

    @classmethod
    def from_flat_terms(
        cls,
        p: int,
        vertex_terms: Iterable[Sequence[int]],
        pair_terms: Iterable[Sequence[int]],
        kernel: str = KERNEL_PYTHON,
    ) -> "ThresholdEstimator":
        """Rebuild an estimator from :meth:`to_flat_terms` output."""
        est = cls(p, kernel=kernel)
        for x, threshold, weight in vertex_terms:
            est.add_vertex_term(x, threshold, weight)
        for x1, t1, x2, t2, weight in pair_terms:
            est.add_pair_term(x1, t1, x2, t2, weight)
        return est
