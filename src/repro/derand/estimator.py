"""Linear threshold estimators with exactly computable expectations.

A :class:`ThresholdEstimator` is a weighted sum of indicator events over
one hash function ``h`` drawn from the affine family mod ``p``:

* **vertex terms** ``w * [h(x) < T]``;
* **pair terms** ``w * [h(x1) < T1 and h(x2) < T2]`` with ``x1 != x2``.

For the affine family all three expectation queries the method of
conditional expectations needs are *exact integer computations*:

``expectation_x_p2``
    ``p^2 * E[Phi]`` over the whole family — vertex events contribute
    ``w * T * p``, pair events ``w * T1 * T2`` (exact pairwise
    independence).

``cond_a_x_p``
    ``p * E[Phi | a]`` with ``b`` uniform: the event ``h(x) < T`` is
    ``b in I_x`` where ``I_x`` is the cyclic interval of length ``T``
    starting at ``(-a x) mod p``, so a pair event's conditional
    probability is ``|I_{x1} ∩ I_{x2}| / p`` — a cyclic-interval overlap.

``cond_ab_range``
    ``sum of w * |I ∩ [b_lo, b_hi)|`` — the numerator of
    ``E[Phi | a, b in range]`` used when fixing the bits of ``b``
    most-significant-first.

The estimator is also evaluated pointwise (``value``) to certify that the
seed finally committed meets its guaranteed bound.

Hot-path caching (terms are immutable once a selection starts, so all of
this is invisible to callers):

* ``expectation_x_p2`` and the vertex part of ``cond_a_x_p`` are running
  sums maintained at term insertion — O(1) per query instead of a full
  term scan;
* the per-term cyclic-interval segments (and pair-term intersections)
  for one multiplier ``a`` are derived once and reused across every
  ``cond_ab_range`` query for that ``a`` — the offset-fixing stage asks
  about ~``2^c · ceil(log2(p)/c)`` ranges under a single multiplier, and
  previously re-derived every interval per range.  Adding a term
  invalidates the cache, so caching can never change a result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.derand.family import Seed
from repro.errors import DerandomizationError
from repro.util.intervals import (
    intersect_segments,
    interval_to_segments,
    segments_length,
    segments_overlap_range,
)


@dataclass(frozen=True)
class VertexTerm:
    """``weight * [h(x) < threshold]``."""

    x: int
    threshold: int
    weight: int


@dataclass(frozen=True)
class PairTerm:
    """``weight * [h(x1) < t1 and h(x2) < t2]`` with ``x1 != x2``."""

    x1: int
    t1: int
    x2: int
    t2: int
    weight: int


class ThresholdEstimator:
    """A weighted sum of threshold events, exactly analysable mod ``p``."""

    def __init__(self, p: int):
        if p < 2:
            raise DerandomizationError(f"modulus must be >= 2, got {p}")
        self.p = p
        self.vertex_terms: List[VertexTerm] = []
        self.pair_terms: List[PairTerm] = []
        # Running sums maintained at insertion (term lists are append-only).
        self._vertex_weighted_thresholds = 0  # Σ w·T   (cond_a_x_p vertex part)
        self._expectation_x_p2 = 0            # Σ w·T·p + Σ w·T1·T2
        # Per-multiplier segment cache: (a, [(weight, segments), ...]).
        self._a_cache_key: Optional[int] = None
        self._a_cache_terms: Optional[List[Tuple[int, List[Tuple[int, int]]]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex_term(self, x: int, threshold: int, weight: int) -> None:
        """Add ``weight * [h(x) < threshold]``."""
        self._check_threshold(threshold)
        self.vertex_terms.append(
            VertexTerm(x=x, threshold=threshold, weight=weight)
        )
        self._vertex_weighted_thresholds += weight * threshold
        self._expectation_x_p2 += weight * threshold * self.p
        self._a_cache_key = self._a_cache_terms = None

    def add_pair_term(
        self, x1: int, t1: int, x2: int, t2: int, weight: int
    ) -> None:
        """Add ``weight * [h(x1) < t1 and h(x2) < t2]``; needs ``x1 != x2``.

        Pairwise independence (hence exactness of ``expectation_x_p2``)
        requires the two hashed points to be distinct field elements.
        """
        if x1 % self.p == x2 % self.p:
            raise DerandomizationError(
                f"pair term needs distinct points mod p, got {x1}, {x2}"
            )
        self._check_threshold(t1)
        self._check_threshold(t2)
        self.pair_terms.append(
            PairTerm(x1=x1, t1=t1, x2=x2, t2=t2, weight=weight)
        )
        self._expectation_x_p2 += weight * t1 * t2
        self._a_cache_key = self._a_cache_terms = None

    def _check_threshold(self, threshold: int) -> None:
        if not 0 <= threshold <= self.p:
            raise DerandomizationError(
                f"threshold {threshold} out of [0, {self.p}]"
            )

    @property
    def num_terms(self) -> int:
        """Total term count."""
        return len(self.vertex_terms) + len(self.pair_terms)

    # ------------------------------------------------------------------
    # Exact analysis
    # ------------------------------------------------------------------
    def value(self, seed: Seed) -> int:
        """Pointwise value of the estimator at ``seed``.

        >>> est = ThresholdEstimator(7)
        >>> est.add_vertex_term(x=3, threshold=4, weight=5)
        >>> est.value(Seed(1, 0, 7))   # h(3) = 3 < 4
        5
        """
        total = 0
        for term in self.vertex_terms:
            if seed.hash(term.x) < term.threshold:
                total += term.weight
        for term in self.pair_terms:
            if (
                seed.hash(term.x1) < term.t1
                and seed.hash(term.x2) < term.t2
            ):
                total += term.weight
        return total

    def expectation_x_p2(self) -> int:
        """Return the integer ``p^2 * E[Phi]`` over the full family."""
        return self._expectation_x_p2

    def _interval(self, x: int, threshold: int, a: int):
        """Segments of ``{b : (a x + b) mod p < threshold}``."""
        start = (-a * x) % self.p
        return interval_to_segments(start, threshold, self.p)

    def _prepared_terms(
        self, a: int
    ) -> List[Tuple[int, List[Tuple[int, int]]]]:
        """All terms as ``(weight, b-segments)`` under multiplier ``a``.

        Derived once per ``a`` and cached; every range query under the
        same multiplier reuses the list.  The cache holds one multiplier
        (the offset-fixing stage only ever asks about the chosen one), so
        memory stays O(terms).
        """
        if self._a_cache_key != a:
            terms: List[Tuple[int, List[Tuple[int, int]]]] = []
            for term in self.vertex_terms:
                terms.append(
                    (
                        term.weight,
                        self._interval(term.x, term.threshold, a),
                    )
                )
            for term in self.pair_terms:
                terms.append(
                    (
                        term.weight,
                        intersect_segments(
                            self._interval(term.x1, term.t1, a),
                            self._interval(term.x2, term.t2, a),
                        ),
                    )
                )
            self._a_cache_key = a
            self._a_cache_terms = terms
        return self._a_cache_terms

    def cond_a_x_p(self, a: int) -> int:
        """Return the integer ``p * E[Phi | a]`` (``b`` uniform on Z_p).

        The vertex part is the precomputed ``Σ w·T`` (a vertex event's
        conditional probability given ``a`` is ``T/p`` regardless of
        ``a``); only pair overlaps depend on the multiplier.
        """
        total = self._vertex_weighted_thresholds
        for term in self.pair_terms:
            overlap = segments_length(
                intersect_segments(
                    self._interval(term.x1, term.t1, a),
                    self._interval(term.x2, term.t2, a),
                )
            )
            total += term.weight * overlap
        return total

    def cond_ab_range(self, a: int, b_lo: int, b_hi: int) -> int:
        """Return ``sum_terms w * |I_term ∩ [b_lo, b_hi)|``.

        Dividing by ``b_hi - b_lo`` (the caller clips the range to
        ``[0, p)`` first) gives ``E[Phi | a, b in range]`` exactly.
        """
        if not 0 <= b_lo <= b_hi <= self.p:
            raise DerandomizationError(
                f"range [{b_lo}, {b_hi}) must lie within [0, {self.p}]"
            )
        total = 0
        for weight, segments in self._prepared_terms(a):
            total += weight * segments_overlap_range(segments, b_lo, b_hi)
        return total

    # ------------------------------------------------------------------
    # Serialization (for distributed term storage on machines)
    # ------------------------------------------------------------------
    def to_flat_terms(
        self,
    ) -> Tuple[List[Tuple[int, int, int]], List[Tuple[int, int, int, int, int]]]:
        """Return terms as plain integer tuples (machine-storable)."""
        return (
            [(t.x, t.threshold, t.weight) for t in self.vertex_terms],
            [(t.x1, t.t1, t.x2, t.t2, t.weight) for t in self.pair_terms],
        )

    @classmethod
    def from_flat_terms(
        cls,
        p: int,
        vertex_terms: Iterable[Sequence[int]],
        pair_terms: Iterable[Sequence[int]],
    ) -> "ThresholdEstimator":
        """Rebuild an estimator from :meth:`to_flat_terms` output."""
        est = cls(p)
        for x, threshold, weight in vertex_terms:
            est.add_vertex_term(x, threshold, weight)
        for x1, t1, x2, t2, weight in pair_terms:
            est.add_pair_term(x1, t1, x2, t2, weight)
        return est
