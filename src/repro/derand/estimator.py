"""Linear threshold estimators with exactly computable expectations.

A :class:`ThresholdEstimator` is a weighted sum of indicator events over
one hash function ``h`` drawn from the affine family mod ``p``:

* **vertex terms** ``w * [h(x) < T]``;
* **pair terms** ``w * [h(x1) < T1 and h(x2) < T2]`` with ``x1 != x2``.

For the affine family all three expectation queries the method of
conditional expectations needs are *exact integer computations*:

``expectation_x_p2``
    ``p^2 * E[Phi]`` over the whole family — vertex events contribute
    ``w * T * p``, pair events ``w * T1 * T2`` (exact pairwise
    independence).

``cond_a_x_p``
    ``p * E[Phi | a]`` with ``b`` uniform: the event ``h(x) < T`` is
    ``b in I_x`` where ``I_x`` is the cyclic interval of length ``T``
    starting at ``(-a x) mod p``, so a pair event's conditional
    probability is ``|I_{x1} ∩ I_{x2}| / p`` — a cyclic-interval overlap.

``cond_ab_range``
    ``sum of w * |I ∩ [b_lo, b_hi)|`` — the numerator of
    ``E[Phi | a, b in range]`` used when fixing the bits of ``b``
    most-significant-first.

The estimator is also evaluated pointwise (``value``) to certify that the
seed finally committed meets its guaranteed bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.derand.family import Seed
from repro.errors import DerandomizationError
from repro.util.intervals import (
    intersect_segments,
    interval_to_segments,
    segments_length,
    segments_overlap_range,
)


@dataclass(frozen=True)
class VertexTerm:
    """``weight * [h(x) < threshold]``."""

    x: int
    threshold: int
    weight: int


@dataclass(frozen=True)
class PairTerm:
    """``weight * [h(x1) < t1 and h(x2) < t2]`` with ``x1 != x2``."""

    x1: int
    t1: int
    x2: int
    t2: int
    weight: int


class ThresholdEstimator:
    """A weighted sum of threshold events, exactly analysable mod ``p``."""

    def __init__(self, p: int):
        if p < 2:
            raise DerandomizationError(f"modulus must be >= 2, got {p}")
        self.p = p
        self.vertex_terms: List[VertexTerm] = []
        self.pair_terms: List[PairTerm] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex_term(self, x: int, threshold: int, weight: int) -> None:
        """Add ``weight * [h(x) < threshold]``."""
        self._check_threshold(threshold)
        self.vertex_terms.append(
            VertexTerm(x=x, threshold=threshold, weight=weight)
        )

    def add_pair_term(
        self, x1: int, t1: int, x2: int, t2: int, weight: int
    ) -> None:
        """Add ``weight * [h(x1) < t1 and h(x2) < t2]``; needs ``x1 != x2``.

        Pairwise independence (hence exactness of ``expectation_x_p2``)
        requires the two hashed points to be distinct field elements.
        """
        if x1 % self.p == x2 % self.p:
            raise DerandomizationError(
                f"pair term needs distinct points mod p, got {x1}, {x2}"
            )
        self._check_threshold(t1)
        self._check_threshold(t2)
        self.pair_terms.append(
            PairTerm(x1=x1, t1=t1, x2=x2, t2=t2, weight=weight)
        )

    def _check_threshold(self, threshold: int) -> None:
        if not 0 <= threshold <= self.p:
            raise DerandomizationError(
                f"threshold {threshold} out of [0, {self.p}]"
            )

    @property
    def num_terms(self) -> int:
        """Total term count."""
        return len(self.vertex_terms) + len(self.pair_terms)

    # ------------------------------------------------------------------
    # Exact analysis
    # ------------------------------------------------------------------
    def value(self, seed: Seed) -> int:
        """Pointwise value of the estimator at ``seed``.

        >>> est = ThresholdEstimator(7)
        >>> est.add_vertex_term(x=3, threshold=4, weight=5)
        >>> est.value(Seed(1, 0, 7))   # h(3) = 3 < 4
        5
        """
        total = 0
        for term in self.vertex_terms:
            if seed.hash(term.x) < term.threshold:
                total += term.weight
        for term in self.pair_terms:
            if (
                seed.hash(term.x1) < term.t1
                and seed.hash(term.x2) < term.t2
            ):
                total += term.weight
        return total

    def expectation_x_p2(self) -> int:
        """Return the integer ``p^2 * E[Phi]`` over the full family."""
        p = self.p
        total = 0
        for term in self.vertex_terms:
            total += term.weight * term.threshold * p
        for term in self.pair_terms:
            total += term.weight * term.t1 * term.t2
        return total

    def _interval(self, x: int, threshold: int, a: int):
        """Segments of ``{b : (a x + b) mod p < threshold}``."""
        start = (-a * x) % self.p
        return interval_to_segments(start, threshold, self.p)

    def cond_a_x_p(self, a: int) -> int:
        """Return the integer ``p * E[Phi | a]`` (``b`` uniform on Z_p)."""
        total = 0
        for term in self.vertex_terms:
            total += term.weight * term.threshold
        for term in self.pair_terms:
            overlap = segments_length(
                intersect_segments(
                    self._interval(term.x1, term.t1, a),
                    self._interval(term.x2, term.t2, a),
                )
            )
            total += term.weight * overlap
        return total

    def cond_ab_range(self, a: int, b_lo: int, b_hi: int) -> int:
        """Return ``sum_terms w * |I_term ∩ [b_lo, b_hi)|``.

        Dividing by ``b_hi - b_lo`` (the caller clips the range to
        ``[0, p)`` first) gives ``E[Phi | a, b in range]`` exactly.
        """
        if not 0 <= b_lo <= b_hi <= self.p:
            raise DerandomizationError(
                f"range [{b_lo}, {b_hi}) must lie within [0, {self.p}]"
            )
        total = 0
        for term in self.vertex_terms:
            total += term.weight * segments_overlap_range(
                self._interval(term.x, term.threshold, a), b_lo, b_hi
            )
        for term in self.pair_terms:
            overlap = intersect_segments(
                self._interval(term.x1, term.t1, a),
                self._interval(term.x2, term.t2, a),
            )
            total += term.weight * segments_overlap_range(
                overlap, b_lo, b_hi
            )
        return total

    # ------------------------------------------------------------------
    # Serialization (for distributed term storage on machines)
    # ------------------------------------------------------------------
    def to_flat_terms(
        self,
    ) -> Tuple[List[Tuple[int, int, int]], List[Tuple[int, int, int, int, int]]]:
        """Return terms as plain integer tuples (machine-storable)."""
        return (
            [(t.x, t.threshold, t.weight) for t in self.vertex_terms],
            [(t.x1, t.t1, t.x2, t.t2, t.weight) for t in self.pair_terms],
        )

    @classmethod
    def from_flat_terms(
        cls,
        p: int,
        vertex_terms: Iterable[Sequence[int]],
        pair_terms: Iterable[Sequence[int]],
    ) -> "ThresholdEstimator":
        """Rebuild an estimator from :meth:`to_flat_terms` output."""
        est = cls(p)
        for x, threshold, weight in vertex_terms:
            est.add_vertex_term(x, threshold, weight)
        for x1, t1, x2, t2, weight in pair_terms:
            est.add_pair_term(x1, t1, x2, t2, weight)
        return est
