"""Distributed seed selection in the MPC model.

Two mechanisms, both built on vector reductions and broadcasts so every
round of coordination is accounted by the simulator:

``distributed_choose_seed``
    The method of conditional expectations with the estimator's terms
    *partitioned across machines* (each machine holds the terms arising
    from its own vertices/edges, as flat integer tuples).  Candidate
    multipliers are scored in batches of ``2^chunk_bits`` per reduction,
    and offset bits are fixed ``chunk_bits`` at a time by scoring all
    ``2^chunk_bits`` extensions at once — so the whole selection costs
    ``O((scan_batches + ceil(log2(p)/chunk_bits)))`` reductions.

``distributed_scan_seeds``
    Batched scanning for statistics that are *not* linear (e.g. "how many
    high-degree vertices have no sampled neighbour" — a conjunction over a
    whole neighbourhood).  Each machine evaluates every candidate seed on
    its local state with **zero communication** — neighbours are known by
    id and ``h(id)`` is locally computable — and an acceptance predicate
    at machine 0 stops the scan.  With a target set at a constant slack
    above the family expectation, a Chebyshev/Markov argument over the
    pairwise-independent family guarantees a constant fraction of seeds
    qualify, so the deterministic scan stops after O(1) batches (measured
    in bench E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.derand.estimator import ThresholdEstimator
from repro.derand.family import AffineFamily, Seed
from repro.errors import DerandomizationError
from repro.mpc.machine import Machine
from repro.mpc.state_layout import KERNEL_PYTHON, BoundedCache
from repro.mpc.primitives.aggregate import reduce_vector
from repro.mpc.primitives.broadcast import broadcast_value
from repro.mpc.simulator import Simulator


@dataclass(frozen=True)
class SeedScanStats:
    """Bookkeeping from one distributed seed selection."""

    candidates_scanned: int
    batches: int
    accepted_index: int


def flat_term_estimator(
    p: int, vkey: str, pkey: str, kernel: str = KERNEL_PYTHON
) -> "EstimatorBuilder":
    """Builder reading flat terms ``(x, T, w)`` / ``(x1, T1, x2, T2, w)``.

    The generic storage layout; algorithms with redundancy in their terms
    (e.g. Luby, whose pair weights equal the vertex weights) can pass a
    custom builder with a more compact on-machine layout instead.
    ``kernel`` selects the estimator's evaluation backend (see
    :mod:`repro.mpc.state_layout`).
    """

    def build(machine: Machine) -> ThresholdEstimator:
        return ThresholdEstimator.from_flat_terms(
            p,
            machine.store.get(vkey, ()),
            machine.store.get(pkey, ()),
            kernel=kernel,
        )

    return build


EstimatorBuilder = Callable[[Machine], ThresholdEstimator]


class MemoizedEstimatorBuilder:
    """Build each machine's estimator once per selection, then reuse it.

    A machine's terms are immutable for the duration of one seed
    selection, yet a selection issues many vector reductions
    (expectation, multiplier batches, every offset chunk, the final
    certificate) — each of which used to rebuild every machine's
    estimator from its flat terms.  This wrapper memoizes by machine id,
    turning ~``2 + scan_batches + ceil(log2(p)/c)`` rebuilds per machine
    into one, and letting the estimator's own per-multiplier segment
    cache survive across reductions.

    ``capacity`` bounds the cache to the backend's resident-machine
    count: under an out-of-core backend only one shard of machines is in
    memory at a time, and an unbounded estimator cache would quietly
    rebuild the O(all machines) driver footprint the backend spilled.
    Eviction only costs a rebuild on a future visit — never correctness.
    """

    def __init__(
        self, builder: EstimatorBuilder, capacity: Optional[int] = None
    ):
        self._builder = builder
        self._cache = BoundedCache(capacity)

    def __call__(self, machine: Machine) -> ThresholdEstimator:
        est = self._cache.get(machine.mid)
        if est is None:
            est = self._builder(machine)
            self._cache.put(machine.mid, est)
        return est


def _tuple_sum(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(x + y for x, y in zip(a, b))


def distributed_choose_seed(
    sim: Simulator,
    p: int,
    local_estimator: EstimatorBuilder,
    chunk_bits: int = 5,
    max_a_batches: Optional[int] = None,
    cache_estimators: bool = True,
) -> Tuple[Seed, SeedScanStats]:
    """Method of conditional expectations over machine-partitioned terms.

    ``local_estimator(machine)`` rebuilds each machine's share of the
    global estimator from its own store (see :func:`flat_term_estimator`
    for the generic layout).  Returns a seed with
    ``Phi(seed) >= E[Phi]`` where ``Phi`` is the *global* (sum over
    machines) estimator, plus scan statistics.

    ``cache_estimators`` (default on) memoizes the per-machine estimator
    for the duration of this call — terms are immutable while a
    selection runs, so the cache cannot change any result, only skip
    redundant rebuild work (measured ≥2× on bench E10's seed-search
    phase).  Pass False to rebuild per reduction, e.g. for ablation.
    """
    if chunk_bits < 1:
        raise DerandomizationError("chunk_bits must be >= 1")
    if cache_estimators:
        local_estimator = MemoizedEstimatorBuilder(
            local_estimator,
            capacity=sim.backend.resident_machines_hint(),
        )
    # Keep reduction vectors within the I/O budget: a tree node receives
    # up to (fanout - 1) * width words, so cap the width at S / 4.
    while chunk_bits > 1 and (1 << chunk_bits) > sim.config.memory_words // 4:
        chunk_bits -= 1
    batch = 1 << chunk_bits

    # Global expectation: one scalar reduction.
    target = reduce_vector(
        sim,
        lambda m: (local_estimator(m).expectation_x_p2(),),
        _tuple_sum,
        width=1,
    )[0]

    # ---------------- Stage 1: scan multipliers in batches ----------------
    family = AffineFamily(p)
    chosen_a = None
    scanned = 0
    batches = 0
    base = 0
    while chosen_a is None:
        if max_a_batches is not None and batches >= max_a_batches:
            raise DerandomizationError(
                f"no acceptable multiplier within {batches} batches"
            )
        candidates = [
            family.seed_by_index(index * p).a
            for index in range(base, min(base + batch, p))
        ]
        if not candidates:
            raise DerandomizationError(
                "multiplier scan exhausted the family — estimator bug"
            )
        batches += 1

        def score_multipliers(m: Machine) -> Tuple[int, ...]:
            # One batched call: the numpy kernel scores the whole batch
            # in a single overlap-matrix expression; the python kernel
            # loops — identical results either way.
            return tuple(local_estimator(m).cond_a_x_p_many(candidates))

        sums = reduce_vector(
            sim, score_multipliers, _tuple_sum, width=len(candidates)
        )
        accept = next(
            (
                j
                for j, total in enumerate(sums)
                if p * total >= target
            ),
            None,
        )
        scanned += len(candidates) if accept is None else accept + 1
        if accept is not None:
            chosen_a = candidates[accept]
        base += batch

    broadcast_value(sim, (chosen_a,), "_derand_a")

    # ---------------- Stage 2: fix offset bits in chunks ----------------
    bits = max(1, p.bit_length())
    lo = 0
    width = 1 << bits
    remaining = bits
    while remaining > 0:
        step = min(chunk_bits, remaining)
        sub = width >> step
        ranges = []
        for j in range(1 << step):
            r_lo = min(lo + j * sub, p)
            r_hi = min(lo + (j + 1) * sub, p)
            ranges.append((r_lo, r_hi))

        def score_ranges(m: Machine) -> Tuple[int, ...]:
            # Batched under the committed multiplier; degenerate ranges
            # (clipped to zero width above p) score 0 in both kernels.
            return tuple(
                local_estimator(m).cond_ab_range_many(chosen_a, ranges)
            )

        sums = reduce_vector(
            sim, score_ranges, _tuple_sum, width=len(ranges)
        )
        best_j = 0
        best_sum, best_count = None, None
        for j, (r_lo, r_hi) in enumerate(ranges):
            count = r_hi - r_lo
            if count <= 0:
                continue
            total = sums[j]
            if best_sum is None or total * best_count > best_sum * count:
                best_j, best_sum, best_count = j, total, count
        lo = ranges[best_j][0]
        width = sub
        remaining -= step
        broadcast_value(sim, (lo,), "_derand_lo")

    seed = Seed(a=chosen_a, b=lo, p=p)

    # Certify the guarantee against the *global* pointwise value.
    achieved = reduce_vector(
        sim,
        lambda m: (local_estimator(m).value(seed),),
        _tuple_sum,
        width=1,
    )[0]
    if achieved * p * p < target:
        raise DerandomizationError(
            f"distributed selection scored {achieved}, below guarantee "
            f"{target}/p^2"
        )
    broadcast_value(sim, (seed.a, seed.b), "_derand_seed")
    return seed, SeedScanStats(
        candidates_scanned=scanned, batches=batches, accepted_index=seed.a
    )


def distributed_scan_seeds(
    sim: Simulator,
    p: int,
    local_stats: Callable[[Machine, Seed], Sequence[int]],
    stat_width: int,
    accept: Callable[[Tuple[int, ...]], bool],
    batch: int = 32,
    max_batches: int = 64,
    start_index: int = 0,
) -> Tuple[Seed, Tuple[int, ...], SeedScanStats]:
    """Scan the family in canonical order for a seed meeting ``accept``.

    ``local_stats(machine, seed)`` evaluates each machine's contribution
    (a ``stat_width``-tuple of ints) to the global statistic for one
    candidate seed, using only local state; per batch the concatenated
    statistics are combined in one vector reduction.  The winning seed is
    broadcast under ``store["_derand_seed"]``.

    Returns ``(seed, global_stats, scan_stats)``.  Raises if ``max_batches``
    batches are exhausted — with a target at constant slack over the
    family expectation that indicates a miscalibrated target, not bad
    luck, so it is an error by design.
    """
    family = AffineFamily(p)
    batch = max(1, min(batch, sim.config.memory_words // (4 * stat_width)))
    scanned = 0
    for batch_no in range(max_batches):
        seeds = [
            family.scan_seed(start_index + batch_no * batch + j)
            for j in range(batch)
        ]

        def score(m: Machine) -> Tuple[int, ...]:
            flat: List[int] = []
            for seed in seeds:
                stats = tuple(local_stats(m, seed))
                if len(stats) != stat_width:
                    raise DerandomizationError(
                        f"local_stats returned width {len(stats)}, "
                        f"expected {stat_width}"
                    )
                flat.extend(int(s) for s in stats)
            return tuple(flat)

        sums = reduce_vector(
            sim, score, _tuple_sum, width=batch * stat_width
        )
        for j, seed in enumerate(seeds):
            scanned += 1
            stats = tuple(sums[j * stat_width : (j + 1) * stat_width])
            if accept(stats):
                broadcast_value(sim, (seed.a, seed.b), "_derand_seed")
                return seed, stats, SeedScanStats(
                    candidates_scanned=scanned,
                    batches=batch_no + 1,
                    accepted_index=start_index + batch_no * batch + j,
                )
    raise DerandomizationError(
        f"no acceptable seed in {max_batches} batches of {batch} — "
        "target miscalibrated for this family"
    )
