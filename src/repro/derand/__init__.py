"""Derandomization toolkit: bounded independence + conditional expectations.

The deterministic algorithms replace random choices with a seed drawn from
the **affine pairwise-independent family** ``h_{a,b}(x) = (a x + b) mod p``
(:mod:`~repro.derand.family`).  Two seed-selection mechanisms are provided:

:mod:`~repro.derand.conditional`
    The *method of conditional expectations*, computed **exactly**: for a
    linear estimator built from per-vertex threshold events
    (``h(x) < T``) and per-edge joint events, conditional expectations
    under partial seeds reduce to cyclic-interval measures in ``Z_p``
    (:mod:`repro.util.intervals`).  The chosen seed provably scores at
    least the family average.  Used by the derandomized Luby MIS step.

:mod:`~repro.derand.seed_search`
    *Batched distributed seed scanning* for statistics that are not linear
    (coverage events are conjunctions over whole neighbourhoods).  Every
    machine can evaluate any candidate seed on its local subgraph with no
    communication — hash values of neighbour *ids* are locally computable
    — so a vector-reduction scores a whole batch of seeds per O(1) rounds.
    A pairwise-independence (Chebyshev) argument guarantees a constant
    fraction of the family meets the target, so the deterministic scan
    stops after a handful of candidates.

:mod:`~repro.derand.estimator`
    The linear estimator representation shared by both mechanisms.
"""

from repro.derand.family import AffineFamily, Seed
from repro.derand.estimator import PairTerm, ThresholdEstimator, VertexTerm
from repro.derand.conditional import SelectionStats, choose_seed
from repro.derand.seed_search import (
    SeedScanStats,
    distributed_choose_seed,
    distributed_scan_seeds,
)

__all__ = [
    "AffineFamily",
    "Seed",
    "VertexTerm",
    "PairTerm",
    "ThresholdEstimator",
    "SelectionStats",
    "choose_seed",
    "SeedScanStats",
    "distributed_choose_seed",
    "distributed_scan_seeds",
]
