"""The method of conditional expectations, computed exactly.

Given a :class:`~repro.derand.estimator.ThresholdEstimator` ``Phi``, this
module deterministically selects a seed ``(a, b)`` of the affine family
with the guarantee ``Phi(h_{a,b}) >= E[Phi]`` (the family average).  The
selection is two-stage:

**Stage 1 — choose the multiplier ``a``.**  Scan ``a`` in the canonical
order and accept the first value with ``E[Phi | a] >= E[Phi]``; one must
exist because the conditional expectations average to ``E[Phi]``.  All
comparisons are integer cross-multiplications (``p * (p E[Phi|a]) >=
p^2 E[Phi]``) — no floats anywhere.

**Stage 2 — fix the offset ``b`` bit by bit.**  Maintain the candidate
range ``[lo, lo + 2^r)`` of offsets consistent with the bits committed so
far (clipped to ``[0, p)``); each bit choice keeps the child whose exact
conditional average is at least the parent's.  After ``ceil(log2 p)``
steps the range is a single offset.

The final seed's pointwise value is re-evaluated and checked against the
guarantee — a violation raises
:class:`~repro.errors.DerandomizationError` (it would indicate a bug, not
bad luck; there is no luck left).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.derand.estimator import ThresholdEstimator
from repro.derand.family import Seed
from repro.errors import DerandomizationError
from repro.mpc.state_layout import KERNEL_NUMPY

# Candidate batch ramp for the vectorized multiplier scan: the accepted
# multiplier is usually within the first handful of candidates (the
# family average argument guarantees density), so the numpy kernel
# starts with a small batch and quadruples on every miss up to a cap —
# little wasted evaluation on the common case, still one big overlap
# matrix per call on the adversarial tail.  The reference kernel keeps
# batch 1 so it never evaluates a candidate the serial early-exit loop
# would not have.
_A_SCAN_BATCH_START = 8
_A_SCAN_BATCH_CAP = 512


@dataclass(frozen=True)
class SelectionStats:
    """Bookkeeping from one seed selection (benchmarked in E7)."""

    a_candidates_scanned: int
    bits_fixed: int
    expectation_x_p2: int
    achieved_value: int


def scan_order_a(p: int) -> Iterator[int]:
    """Canonical multiplier order: injective members first, ``a = 0`` last."""
    yield from range(1, p)
    yield 0


def choose_multiplier(
    estimator: ThresholdEstimator, max_scan: Optional[int] = None
) -> Tuple[int, int, int]:
    """Stage 1: return ``(a, candidates_scanned, p^2 E[Phi])``.

    Accepts the first ``a`` whose conditional expectation meets the family
    average.  ``max_scan`` bounds the scan for callers that prefer to fail
    fast; by default the scan is exhaustive (an acceptable ``a`` always
    exists, so exhaustion indicates an internal bug and raises).

    Under the numpy kernel candidates are evaluated in batches through
    :meth:`~repro.derand.estimator.ThresholdEstimator.cond_a_x_p_many`;
    the accepted multiplier and the scanned count are those of the
    serial scan — a candidate counts as scanned exactly when it precedes
    (or is) the accepted one, and ``max_scan`` caps the candidates
    *eligible* for evaluation, never how the batch happens to align.
    """
    p = estimator.p
    target = estimator.expectation_x_p2()
    scanned = 0
    # One counting rule for both scan modes: a candidate counts as
    # scanned exactly when its conditional expectation was evaluated.
    # The bounded path used to decide the cutoff *after* bumping the
    # counter, so whether ``a = 0`` appeared in the count depended on
    # which path exhausted — the stats were not comparable between
    # bounded and exhaustive runs of the same estimator.
    vectorized = estimator.kernel == KERNEL_NUMPY
    chunk_size = _A_SCAN_BATCH_START if vectorized else 1
    order = scan_order_a(p)
    exhausted = False
    while not exhausted:
        chunk = []
        while len(chunk) < chunk_size:
            if max_scan is not None and scanned + len(chunk) >= max_scan:
                break
            a = next(order, None)
            if a is None:
                exhausted = True
                break
            chunk.append(a)
        if not chunk:
            break
        for a, cond in zip(chunk, estimator.cond_a_x_p_many(chunk)):
            scanned += 1
            if p * cond >= target:
                return a, scanned, target
        if vectorized:
            chunk_size = min(chunk_size * 4, _A_SCAN_BATCH_CAP)
    if max_scan is None:
        raise DerandomizationError(
            f"no multiplier met the family average over Z_{p} "
            f"({scanned} candidates scanned, all {p} exhausted) — "
            "estimator arithmetic bug"
        )
    raise DerandomizationError(
        f"no acceptable multiplier within max_scan={max_scan} "
        f"({scanned} of {p} candidates scanned over Z_{p})"
    )


def fix_offset_bits(estimator: ThresholdEstimator, a: int) -> Tuple[int, int]:
    """Stage 2: return ``(b, bits_fixed)`` for the chosen multiplier.

    Bit-by-bit range halving with exact conditional averages.  The
    invariant — the kept child's average is at least its parent's — makes
    the final singleton's value at least ``E[Phi | a]``.
    """
    p = estimator.p
    bits = max(1, p.bit_length())
    lo = 0
    width = 1 << bits
    fixed = 0
    for _ in range(bits):
        width //= 2
        left = (lo, min(lo + width, p))
        right = (min(lo + width, p), min(lo + 2 * width, p))
        left_count = left[1] - left[0]
        right_count = right[1] - right[0]
        fixed += 1
        if right_count <= 0:
            continue  # right child entirely above p: keep left (lo as-is)
        left_sum, right_sum = estimator.cond_ab_range_many(a, [left, right])
        # Compare averages exactly: left_sum/left_count vs right_sum/right_count
        if right_sum * left_count > left_sum * right_count:
            lo += width
    if not 0 <= lo < p:
        raise DerandomizationError(f"offset fixing escaped Z_p: b={lo}")
    return lo, fixed


def choose_seed(
    estimator: ThresholdEstimator, max_a_scan: Optional[int] = None
) -> Tuple[Seed, SelectionStats]:
    """Select a seed with ``Phi(seed) >= E[Phi]``, exactly and in the clear.

    Returns the seed and selection statistics.  The guarantee is verified
    pointwise before returning.

    >>> est = ThresholdEstimator(11)
    >>> est.add_vertex_term(x=4, threshold=5, weight=2)
    >>> seed, stats = choose_seed(est)
    >>> est.value(seed) * est.p**2 >= stats.expectation_x_p2
    True
    """
    if estimator.num_terms == 0:
        raise DerandomizationError("cannot select a seed for an empty estimator")
    p = estimator.p
    a, scanned, target = choose_multiplier(estimator, max_scan=max_a_scan)
    b, bits = fix_offset_bits(estimator, a)
    seed = Seed(a=a, b=b, p=p)
    achieved = estimator.value(seed)
    if achieved * p * p < target:
        raise DerandomizationError(
            f"selected seed scores {achieved}, below the guaranteed "
            f"average {target}/p^2 — conditional-expectation bug"
        )
    return seed, SelectionStats(
        a_candidates_scanned=scanned,
        bits_fixed=bits,
        expectation_x_p2=target,
        achieved_value=achieved,
    )
